"""Live subsystem: clock/timeline, bus, telemetry, detectors, standing queries."""

import json

import pytest

from repro.analysis.changepoint import StreamingCUSUM
from repro.live import (
    BGPBurstDetector,
    BGPFeed,
    DetectorBank,
    EventBus,
    LiveConfig,
    RTTChangeDetector,
    SimulationClock,
    StandingQuery,
    StandingQueryManager,
    TimelineEvent,
    TracerouteFeed,
    WorldTimeline,
    default_cable_cut_timeline,
    run_live_replay,
    timeline_from_catalog,
)
from repro.live.clock import EpochState
from repro.live.telemetry import ALERTS_TOPIC, BGP_TOPIC, TRACEROUTE_TOPIC
from repro.serve import QueryBroker, ServeConfig
from repro.synth.scenarios import cable_cut_event, default_disaster_catalog

CS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def most_linked_cable(world):
    cable_id = max(world.links_by_cable, key=lambda c: len(world.links_by_cable[c]))
    return world.cables[cable_id]


# -- clock & timeline --------------------------------------------------------


def test_simulation_clock_ticks_and_paces():
    sleeps = []
    clock = SimulationClock(epoch_seconds=60.0, pace_s=0.25, sleep=sleeps.append)
    assert clock.tick() == (0, 0.0, 60.0)
    assert clock.tick() == (1, 60.0, 120.0)
    assert sleeps == [0.25, 0.25]
    assert clock.now_ts == 120.0
    with pytest.raises(ValueError):
        SimulationClock(epoch_seconds=0)


def test_timeline_event_validation_and_activity(world):
    event = cable_cut_event(world, most_linked_cable(world).name)
    item = TimelineEvent(event=event, start_epoch=3, duration_epochs=2)
    assert [item.active_at(e) for e in range(6)] == [False, False, False,
                                                    True, True, False]
    forever = TimelineEvent(event=event, start_epoch=1, duration_epochs=None)
    assert forever.active_at(500)
    with pytest.raises(ValueError):
        TimelineEvent(event=event, start_epoch=-1)
    with pytest.raises(ValueError):
        TimelineEvent(event=event, start_epoch=0, duration_epochs=0)


def test_world_timeline_fires_and_heals(world):
    cable = most_linked_cable(world)
    events = [TimelineEvent(event=cable_cut_event(world, cable.name),
                            start_epoch=2, duration_epochs=3)]
    timeline = WorldTimeline(world, events)
    states = timeline.run(7)
    # Baseline before the cut, failure during, healed after.
    assert states[0].failed_link_ids == frozenset()
    assert states[2].failed_cable_ids == (cable.id,)
    assert len(states[2].failed_link_ids) == len(world.links_on_cable(cable.id))
    assert states[5].failed_link_ids == frozenset()
    # Fingerprints: identical configuration => identical fingerprint.
    assert states[0].fingerprint == states[1].fingerprint
    assert states[2].fingerprint == states[3].fingerprint == states[4].fingerprint
    assert states[2].fingerprint != states[0].fingerprint
    assert states[5].fingerprint == states[0].fingerprint  # healed == baseline
    # The changed flag marks exactly the boundaries (and the first epoch).
    assert [s.changed for s in states] == [True, False, True, False, False,
                                           True, False]
    assert states[2].fired_event_ids == (events[0].event.id,)
    assert states[5].healed_event_ids == (events[0].event.id,)
    assert timeline.incident_epochs() == {events[0].event.id: 2}


def test_world_timeline_is_deterministic(world):
    cable = most_linked_cable(world)
    events = [TimelineEvent(event=cable_cut_event(world, cable.name),
                            start_epoch=1, duration_epochs=2)]
    a = WorldTimeline(world, events).run(4)
    b = WorldTimeline(world, events).run(4)
    assert [s.fingerprint for s in a] == [s.fingerprint for s in b]
    assert [s.failed_link_ids for s in a] == [s.failed_link_ids for s in b]


def test_timeline_from_catalog_maps_timestamps_to_epochs(world):
    catalog = default_disaster_catalog()
    items = timeline_from_catalog(world, epoch_seconds=86_400.0,
                                  duration_epochs=2, catalog=catalog)
    assert len(items) == len(catalog)
    by_id = {i.event.id: i for i in items}
    assert by_id["eq-taiwan-2026"].start_epoch == 1  # ts 86_400 / day epochs
    assert all(i.duration_epochs == 2 for i in items)


# -- event bus ---------------------------------------------------------------


def test_bus_fanout_and_isolation():
    bus = EventBus()
    fast = bus.subscribe("topic", name="fast")
    slow = bus.subscribe("topic", name="slow", maxlen=2)
    for i in range(5):
        assert bus.publish("topic", i) == 2
    assert fast.drain() == [0, 1, 2, 3, 4]
    # The slow consumer shed its own oldest messages; fast was unaffected.
    assert slow.drain() == [3, 4]
    assert slow.dropped == 3
    assert bus.stats()["dropped_total"] == 3
    assert bus.publish("nobody-listens", "x") == 0


def test_bus_unsubscribe_and_pop():
    bus = EventBus()
    sub = bus.subscribe("t")
    bus.publish("t", "a")
    assert sub.pop() == "a"
    assert sub.pop() is None
    bus.unsubscribe(sub)
    bus.publish("t", "b")
    assert len(sub) == 0 and sub.closed


# -- streaming changepoint ---------------------------------------------------


def test_streaming_cusum_flat_series_never_alarms():
    detector = StreamingCUSUM(warmup=4, threshold=4.0)
    values = [100 + 0.2 * ((i * 7) % 5 - 2) for i in range(50)]
    assert not any(detector.update(v) for v in values)
    assert detector.alarms == 0
    assert detector.baseline_mean == pytest.approx(100, abs=1)


def test_streaming_cusum_detects_shift_and_rebaselines():
    detector = StreamingCUSUM(warmup=4, threshold=4.0)
    flagged = [i for i, v in enumerate([10.0] * 8 + [15.0] * 8 + [25.0] * 8)
               if detector.update(v)]
    assert detector.alarms == 2
    assert flagged[0] == 8          # the first shifted sample
    assert 12 <= flagged[1] <= 20   # re-armed after re-baselining
    with pytest.raises(ValueError):
        StreamingCUSUM(warmup=1)


# -- telemetry feeds ---------------------------------------------------------


def _epoch(world, index, failed_links=frozenset(), failed_cables=(),
           epoch_seconds=3600.0, changed=False):
    return EpochState(
        index=index,
        window_start=index * epoch_seconds,
        window_end=(index + 1) * epoch_seconds,
        fingerprint=f"fp-{sorted(failed_links) and 'cut' or 'base'}",
        failed_link_ids=frozenset(failed_links),
        failed_cable_ids=tuple(failed_cables),
        active_event_ids=(),
        changed=changed,
    )


def test_traceroute_feed_rows_and_rtt_inflation(world):
    bus = EventBus()
    feed = TracerouteFeed(world, bus, pair_count=6, samples_per_pair=3)
    sub = bus.subscribe(TRACEROUTE_TOPIC)
    cable = most_linked_cable(world)
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))

    base = feed.publish_epoch(_epoch(world, 0))
    cut = feed.publish_epoch(_epoch(world, 1, failed_links=dead))
    assert len(base["rows"]) == 6 * 3
    assert [m["epoch"] for m in sub.drain()] == [0, 1]

    # At least one series that rode the cable got slower or went dark.
    slower = [
        key for key, summary in base["series"].items()
        if key in cut["series"]
        and cut["series"][key]["median_rtt_ms"] > summary["median_rtt_ms"] * 1.05
    ]
    darkened = [k for k in cut["lost_series"] if k in base["series"]]
    assert slower or darkened


def test_traceroute_feed_is_deterministic(world):
    bus = EventBus()
    state = _epoch(world, 0)
    a = TracerouteFeed(world, bus, pair_count=4, samples_per_pair=2).measure(state)
    b = TracerouteFeed(world, bus, pair_count=4, samples_per_pair=2).measure(state)
    assert a == b


def test_bgp_feed_bursts_on_change_and_heal(world):
    bus = EventBus()
    feed = BGPFeed(world, bus)
    cable = most_linked_cable(world)
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))

    quiet = feed.publish_epoch(_epoch(world, 0))
    steady = feed.publish_epoch(_epoch(world, 1))
    burst = feed.publish_epoch(_epoch(world, 2, failed_links=dead, changed=True))
    plateau = feed.publish_epoch(_epoch(world, 3, failed_links=dead))
    heal = feed.publish_epoch(_epoch(world, 4, changed=True))

    churn_level = max(quiet["update_count"], steady["update_count"])
    assert burst["update_count"] > churn_level * 3
    assert burst["withdrawals"] > 0
    # No re-burst while the failure set stays put: back to churn magnitude.
    assert plateau["update_count"] < burst["update_count"] / 3
    assert heal["update_count"] > churn_level * 3  # repairs re-announce
    assert len(bus.subscribe(BGP_TOPIC).drain()) == 0  # late subscriber sees nothing


# -- detectors ---------------------------------------------------------------


def _traceroute_message(epoch, medians, lost=()):
    return {
        "kind": "traceroute",
        "epoch": epoch,
        "window_end": (epoch + 1) * 3600.0,
        "series": {
            key: {"median_rtt_ms": value, "sample_count": 4, "loss_count": 0}
            for key, value in medians.items()
        },
        "lost_series": list(lost),
    }


def test_rtt_detector_flags_shift_epoch():
    detector = RTTChangeDetector(warmup=4, threshold=4.0)
    alerts = []
    for epoch in range(12):
        rtt = 80.0 if epoch < 8 else 140.0
        alerts += detector.observe(_traceroute_message(epoch, {"EU->AS": rtt}))
    assert [a.epoch for a in alerts] == [8]
    assert alerts[0].kind == "rtt_shift"
    assert alerts[0].magnitude == pytest.approx(60.0, abs=1.0)


def test_rtt_detector_flags_series_going_dark():
    detector = RTTChangeDetector()
    detector.observe(_traceroute_message(0, {"EU->AS": 80.0}))
    alerts = detector.observe(_traceroute_message(1, {}, lost=["EU->AS"]))
    assert [a.kind for a in alerts] == ["rtt_loss"]
    # Transition-only: staying dark does not re-alarm every epoch...
    assert detector.observe(_traceroute_message(2, {}, lost=["EU->AS"])) == []
    # ...but recovering and darkening again does.
    detector.observe(_traceroute_message(3, {"EU->AS": 80.0}))
    again = detector.observe(_traceroute_message(4, {}, lost=["EU->AS"]))
    assert [a.kind for a in again] == ["rtt_loss"]
    # A series that never had signal does not alarm.
    assert detector.observe(_traceroute_message(5, {}, lost=["XX->YY"])) == []


def test_bgp_burst_detector_needs_warmup_and_magnitude():
    detector = BGPBurstDetector(warmup=3, burst_factor=4.0, min_updates=50)
    quiet = [{"kind": "bgp", "epoch": e, "window_end": 0.0, "update_count": 12,
              "withdrawals": 0} for e in range(3)]
    for message in quiet:
        assert detector.observe(message) == []
    big = {"kind": "bgp", "epoch": 3, "window_end": 0.0, "update_count": 900,
           "withdrawals": 40}
    alerts = detector.observe(big)
    assert len(alerts) == 1 and alerts[0].kind == "bgp_burst"
    # Bursts do not contaminate the quiet baseline.
    again = detector.observe({**big, "epoch": 4})
    assert len(again) == 1


def test_detector_bank_republishes_alerts():
    bus = EventBus()
    bank = DetectorBank(bus, rtt=RTTChangeDetector(warmup=3, threshold=4.0))
    listener = bus.subscribe(ALERTS_TOPIC)
    for epoch in range(8):
        rtt = 70.0 if epoch < 6 else 160.0
        bus.publish(TRACEROUTE_TOPIC, _traceroute_message(epoch, {"A->B": rtt}))
    fresh = bank.process_pending()
    assert [a.epoch for a in fresh] == [6]
    published = listener.drain()
    assert [p["epoch"] for p in published] == [6]
    assert bank.first_alert_epoch() == 6
    assert bank.first_alert_epoch(kind="bgp_burst") is None


def _bgp_message(epoch, count):
    return {"kind": "bgp", "epoch": epoch, "window_end": (epoch + 1) * 3600.0,
            "update_count": count, "withdrawals": 0, "collector": "rrc-sim"}


def test_detector_bank_dedups_duplicate_alerts_within_epoch():
    """Two burst messages in the same epoch would alarm twice; the bank
    canonicalizes them to one alert and counts the duplicate."""
    bus = EventBus()
    bank = DetectorBank(bus, bgp=BGPBurstDetector(warmup=1, burst_factor=2.0,
                                                  min_updates=10))
    listener = bus.subscribe(ALERTS_TOPIC)
    bus.publish(BGP_TOPIC, _bgp_message(0, 5))        # warmup
    bus.publish(BGP_TOPIC, _bgp_message(1, 100))      # burst
    bus.publish(BGP_TOPIC, _bgp_message(1, 100))      # duplicate, same epoch
    fresh = bank.process_pending()
    assert [a.epoch for a in fresh] == [1]
    assert bank.duplicates_dropped == 1
    assert len(listener.drain()) == 1
    # The same series bursting in a *later* epoch is a new alert.
    bus.publish(BGP_TOPIC, _bgp_message(2, 100))
    assert [a.epoch for a in bank.process_pending()] == [2]
    # The dedup memory is pruned as epochs advance, not hoarded forever.
    bus.publish(BGP_TOPIC, _bgp_message(9, 100))
    bank.process_pending()
    assert all(key[0] >= 8 for key in bank._seen)


def test_detector_bank_output_is_canonical_across_drain_order():
    """The alert sequence must not depend on which subscription drains
    first: publishing bgp-then-rtt and rtt-then-bgp yield identical
    batches, ordered by the canonical sort key."""
    def run(publish_rtt_first):
        bus = EventBus()
        bank = DetectorBank(
            bus,
            rtt=RTTChangeDetector(warmup=3, threshold=4.0),
            bgp=BGPBurstDetector(warmup=1, burst_factor=2.0, min_updates=10),
        )
        def rtt_messages():
            for epoch in range(8):
                rtt = 70.0 if epoch < 6 else 160.0
                bus.publish(TRACEROUTE_TOPIC,
                            _traceroute_message(epoch, {"A->B": rtt}))
        def bgp_messages():
            bus.publish(BGP_TOPIC, _bgp_message(0, 5))
            bus.publish(BGP_TOPIC, _bgp_message(6, 100))
        if publish_rtt_first:
            rtt_messages(); bgp_messages()
        else:
            bgp_messages(); rtt_messages()
        return [a.to_dict() for a in bank.process_pending()]

    first = run(publish_rtt_first=True)
    second = run(publish_rtt_first=False)
    assert first == second
    keys = [(a["epoch"], -a["magnitude"]) for a in first]
    assert keys == sorted(keys)


def test_first_alert_tie_breaks_deterministically():
    """Epoch ties resolve by magnitude then lexical identity — never by
    whichever subscription happened to drain first."""
    from repro.live import Alert

    bus = EventBus()
    bank = DetectorBank(bus)
    bank.alerts = [
        Alert(detector="rtt-cusum", kind="rtt_shift", series_key="B->C",
              epoch=5, ts=0.0, magnitude=10.0),
        Alert(detector="rtt-cusum", kind="rtt_shift", series_key="A->B",
              epoch=5, ts=0.0, magnitude=90.0),
        Alert(detector="bgp-burst", kind="bgp_burst", series_key="rrc-sim",
              epoch=7, ts=0.0, magnitude=99.0),
    ]
    first = bank.first_alert()
    assert (first.series_key, first.magnitude) == ("A->B", 90.0)
    assert bank.first_alert_epoch() == 5
    assert bank.first_alert(kind="bgp_burst").epoch == 7
    assert bank.first_alert(kind="rtt_loss") is None


# -- standing queries --------------------------------------------------------


def test_standing_query_validation():
    with pytest.raises(ValueError):
        StandingQuery(name="", query=CS1)
    with pytest.raises(ValueError):
        StandingQuery(name="x", query="  ")
    with pytest.raises(ValueError):
        StandingQuery(name="x", query=CS1, every_n_epochs=0)
    sq = StandingQuery(name="x", query=CS1, every_n_epochs=3)
    assert [sq.due(e) for e in range(4)] == [True, False, False, True]


def test_standing_manager_caches_by_fingerprint(world):
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        manager = StandingQueryManager(broker)
        manager.register(StandingQuery(name="watch", query=CS1))
        with pytest.raises(ValueError):
            manager.register(StandingQuery(name="watch", query=CS1))

        first = manager.on_epoch(_epoch(world, 0))
        assert first == []  # miss: submitted, not served
        computed = manager.collect(timeout=60)
        assert len(computed) == 1 and computed[0].state == "done"
        assert not computed[0].from_cache

        served = manager.on_epoch(_epoch(world, 1))  # same fingerprint
        assert len(served) == 1 and served[0].from_cache
        assert manager.collect(timeout=5) == []

        stats = manager.stats()
        assert stats == {
            "registered": 1, "evaluations": 2, "cache_hits": 1,
            "submitted": 1, "cancelled": 0, "epoch_shards": 0,
            "max_epoch_shards": 8, "shards_evicted": 0,
            "outstanding": 0, "hit_rate": 0.5,
        }
        cache_stats = broker.stats()["cache"]["per_stage"]["standing"]
        assert cache_stats == {"hits": 1, "misses": 1}


def test_standing_manager_materializes_epoch_shards(world):
    cable = most_linked_cable(world)
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        manager = StandingQueryManager(broker)
        manager.register(StandingQuery(name="watch", query=CS1))
        state = _epoch(world, 0, failed_links=dead, failed_cables=(cable.id,))
        manager.on_epoch(state)
        manager.collect(timeout=60)
        shard_keys = broker.world_keys()
        assert f"default@{state.fingerprint}" in shard_keys
        epoch_shard = broker.shard(f"default@{state.fingerprint}")
        assert [i.cable_name for i in epoch_shard.system.context.incidents] == [
            cable.name
        ]


def test_standing_manager_deregister_cancels_queued(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))  # never started
    manager = StandingQueryManager(broker)
    manager.register(StandingQuery(name="watch", query=CS1))
    manager.on_epoch(_epoch(world, 0))
    assert manager.stats()["outstanding"] == 1
    cancelled = manager.deregister("watch")
    assert cancelled == 1
    assert manager.names() == []
    assert manager.stats()["outstanding"] == 0
    assert broker.stats()["finished_total"]["cancelled"] == 1
    broker.shutdown()


# -- end-to-end replay -------------------------------------------------------


def test_live_replay_detects_incident_and_reuses_cache(world):
    cable = most_linked_cable(world)
    timeline = default_cable_cut_timeline(world, cable_name=cable.name,
                                          cut_epoch=3, outage_epochs=4)
    config = LiveConfig(epochs=10, workers=2, pair_count=4, samples_per_pair=2)
    broker = QueryBroker(world, config=ServeConfig(workers=2)).start()
    try:
        cold = run_live_replay(world=world, timeline_events=timeline,
                               config=config, broker=broker)
        warm = run_live_replay(world=world, timeline_events=timeline,
                               config=config, broker=broker)
    finally:
        broker.shutdown()

    # Ground truth: the cut fires at epoch 3 and an alert lands on it.
    event_id = timeline[0].event.id
    assert cold.incident_epochs == {event_id: 3}
    detection = cold.detection[event_id]
    assert detection["first_alert_epoch"] is not None
    assert detection["latency_epochs"] <= 1
    assert cold.mean_detection_latency_epochs <= 1
    assert any(a["kind"] in ("rtt_shift", "rtt_loss", "bgp_burst")
               for a in cold.alerts)

    # Cold: only the distinct world configurations were computed (baseline,
    # cut, healed==baseline => 2 submissions for 10 evaluations).
    assert cold.standing_stats["submitted"] == 2
    assert cold.standing_stats["cache_hits"] == 8

    # Warm replay against the same broker recomputes nothing at all.
    assert warm.standing_stats["submitted"] == 0
    assert warm.standing_stats["hit_rate"] == 1.0
    assert warm.detection == cold.detection
    assert warm.epochs_per_sec > cold.epochs_per_sec

    # The epoch log ties recomputation to configuration changes: only the
    # baseline epoch and the cut epoch computed; the healed epoch (identical
    # to baseline) was a cache hit.
    recomputed = [row["epoch"] for row in cold.epoch_log
                  if row["standing_computed"]]
    assert recomputed == [0, 3]
    assert cold.to_dict()["mean_detection_latency_epochs"] == \
        cold.mean_detection_latency_epochs


def test_live_replay_cache_dir_survives_restart(world, tmp_path):
    cable = most_linked_cable(world)
    timeline = default_cable_cut_timeline(world, cable_name=cable.name,
                                          cut_epoch=2, outage_epochs=3)
    config = LiveConfig(epochs=6, workers=2, pair_count=4, samples_per_pair=2,
                        cache_dir=str(tmp_path))
    first = run_live_replay(world=world, timeline_events=timeline, config=config)
    assert first.cache_file and json.load(open(first.cache_file))["version"] == 1
    # A brand-new broker (fresh process in spirit) loads the spilled cache.
    second = run_live_replay(world=world, timeline_events=timeline, config=config)
    assert second.standing_stats["submitted"] == 0
    assert second.standing_stats["hit_rate"] == 1.0


def test_live_cli_smoke(capsys):
    from repro.cli import main

    assert main(["--live", "--epochs", "9", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "epochs" in out and "incident:" in out and "standing:" in out


def test_live_cli_rejects_bad_flags(capsys):
    from repro.cli import main

    assert main(["--live", "--epochs", "0"]) == 2
    assert main(["--live", "--pace-ms", "-1"]) == 2


def test_bgp_feed_publishes_route_delta_summaries(world):
    """Epoch messages carry the route-table diff the burst rode on (None
    when the failure set did not move), and the feed's cursor only
    advances on actual transitions."""
    bus = EventBus()
    feed = BGPFeed(world, bus)
    cable = most_linked_cable(world)
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))

    quiet = feed.publish_epoch(_epoch(world, 0))
    burst = feed.publish_epoch(_epoch(world, 1, failed_links=dead, changed=True))
    plateau = feed.publish_epoch(_epoch(world, 2, failed_links=dead))
    heal = feed.publish_epoch(_epoch(world, 3, changed=True))

    assert quiet["route_delta"] is None
    assert plateau["route_delta"] is None
    cut_delta = burst["route_delta"]
    assert cut_delta["changed"] + cut_delta["withdrawn"] > 0
    assert cut_delta["bytes"] > 0
    assert heal["route_delta"]["changed"] > 0  # repairs re-announce routes
    stats = feed.delta_stream.stats()
    assert stats["deltas_emitted"] == 2  # cut + heal, never the steady epochs
    assert feed.delta_stream.position == frozenset()  # healed back to baseline


def test_standing_manager_reports_attached_delta_stream(world):
    with QueryBroker(world, config=ServeConfig(workers=1)) as broker:
        manager = StandingQueryManager(broker)
        assert "route_delta" not in manager.stats()
        bus = EventBus()
        feed = BGPFeed(world, bus)
        manager.attach_delta_stream(feed.delta_stream)
        feed.publish_epoch(_epoch(world, 0))
        cable = most_linked_cable(world)
        dead = frozenset(l.id for l in world.links_on_cable(cable.id))
        feed.publish_epoch(_epoch(world, 1, failed_links=dead, changed=True))
        stats = manager.stats()["route_delta"]
        assert stats["deltas_emitted"] == 1
        assert stats["routes_emitted"] > 0
