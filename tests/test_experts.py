"""Expert baselines: each specialist workflow produces sound output."""

import pytest

from repro.experts import (
    expert_cable_country_impact,
    expert_cascade_analysis,
    expert_forensic_investigation,
    expert_multi_disaster_impact,
)


def test_case1_expert_output(world):
    out = expert_cable_country_impact(world, "SeaMeWe-5")
    assert out["cable_name"] == "SeaMeWe-5"
    assert out["ranking"]
    assert out["failed_link_ids"]
    assert out["affected_counts"]
    scores = [row["score"] for row in out["ranking"]]
    assert scores == sorted(scores, reverse=True)
    counts = {row["country"] for row in out["affected_counts"]}
    assert counts <= set(world.countries.keys())


def test_case1_expert_unknown_cable(world):
    with pytest.raises(KeyError):
        expert_cable_country_impact(world, "Atlantis-1")


def test_case2_expert_processes_all_severe(world):
    out = expert_multi_disaster_impact(world, failure_probability=0.1, seed=0)
    assert out["events_processed"] == 7  # severe events in the catalog
    assert out["combined"]["events_combined"] == 7
    assert isinstance(out["failed_cable_ids"], list)


def test_case2_expert_probability_one_fails_everything_exposed(world):
    out = expert_multi_disaster_impact(world, failure_probability=1.0, seed=0)
    assert len(out["failed_cable_ids"]) >= 3
    assert out["ranking"]


def test_case3_expert_cross_layer_timeline(world):
    out = expert_cascade_analysis(world)
    assert "SeaMeWe-5" in out["corridor_cables"]
    assert out["cascade_rounds"] >= 1
    layers = {e["layer"] for e in out["timeline"]}
    assert {"cable", "ip"} <= layers
    assert out["country_ranking"]
    assert out["initial_failed_links"]


def test_case4_expert_identifies_cable(world, incident):
    out = expert_forensic_investigation(
        world, [incident], window=(incident.window_start, incident.window_end)
    )
    assert out["identified_cable_name"] == "SeaMeWe-5"
    assert out["verdict"] in ("established", "probable")
    assert out["confidence"] > 0.5
    assert abs(out["onset_estimate"] - incident.onset) <= 6 * 3600.0
    assert out["bgp_correlation"]["correlated"]


def test_case4_expert_no_incident_inconclusive(world):
    out = expert_forensic_investigation(world, [], window=(0.0, 604_800.0))
    assert out["significant_count"] == 0
    assert out["verdict"] in ("unsupported", "weak", "insufficient_evidence")
