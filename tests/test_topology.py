"""Topology substrate: relations, valley-free routing, dependency, cascade."""

import pytest

from repro.topology.cascade import propagate_cascade
from repro.topology.dependency import (
    as_dependency_scores,
    build_as_dependency_graph,
    build_cable_dependency_graph,
    shared_cable_ases,
)
from repro.topology.relations import ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter


@pytest.fixture(scope="module")
def as_graph(world):
    return ASGraph.from_world(world)


@pytest.fixture(scope="module")
def router(as_graph):
    return ValleyFreeRouter(as_graph)


# -- relations -------------------------------------------------------------------

def test_graph_covers_all_ases(world, as_graph):
    assert as_graph.all_asns == set(world.ases.keys())


def test_provider_customer_symmetry(as_graph):
    for asn in as_graph.all_asns:
        for provider in as_graph.providers[asn]:
            assert asn in as_graph.customers[provider]
        for customer in as_graph.customers[asn]:
            assert asn in as_graph.providers[customer]


def test_peer_symmetry(as_graph):
    for asn in as_graph.all_asns:
        for peer in as_graph.peers[asn]:
            assert asn in as_graph.peers[peer]


def test_failed_pairs_requires_all_parallel_links_down(world):
    # Find a pair with 2+ parallel links; failing one must not sever it.
    by_pair = {}
    for link in world.ip_links:
        by_pair.setdefault(link.as_pair, []).append(link)
    multi = next(pair for pair, links in by_pair.items() if len(links) >= 2)
    links = by_pair[multi]
    assert failed_as_pairs(world, [links[0].id]) == set()
    assert failed_as_pairs(world, [l.id for l in links]) == {multi}


def test_without_pairs_removes_edges(world, as_graph):
    link = world.ip_links[0]
    pair = link.as_pair
    pruned = as_graph.without_pairs({pair})
    assert pair[1] not in (pruned.providers[pair[0]] | pruned.peers[pair[0]]
                           | pruned.customers[pair[0]])


# -- valley-free routing -------------------------------------------------------------

def test_paths_start_and_end_correctly(router, as_graph):
    src = min(as_graph.all_asns)
    paths = router.paths_from(src)
    for dst, path in paths.items():
        assert path[0] == src
        assert path[-1] == dst
        assert len(path) == len(set(path))  # loop-free


def test_valley_free_property(router, as_graph):
    """Once a path descends (peer or customer edge), it never climbs again."""
    src = min(as_graph.all_asns)
    for path in router.paths_from(src).values():
        descending = False
        for a, b in zip(path, path[1:]):
            if b in as_graph.providers[a]:
                assert not descending, f"valley in path {path}"
            else:
                descending = True


def test_router_reaches_most_of_the_graph(router, as_graph):
    src = min(as_graph.all_asns)
    reachable = router.reachable_from(src)
    assert len(reachable) >= 0.9 * len(as_graph.all_asns)


def test_router_unknown_source(router):
    with pytest.raises(KeyError):
        router.paths_from(99999)


def test_router_deterministic(as_graph):
    a = ValleyFreeRouter(as_graph)
    b = ValleyFreeRouter(as_graph)
    src = min(as_graph.all_asns)
    assert a.paths_from(src) == b.paths_from(src)


def test_router_cache_invalidation(as_graph):
    router = ValleyFreeRouter(as_graph)
    src = min(as_graph.all_asns)
    first = router.paths_from(src)
    router.invalidate()
    assert router.paths_from(src) == first


# -- dependency ------------------------------------------------------------------------

def test_dependency_scores_bounded(world):
    scores = as_dependency_scores(world, sample_sources=40)
    assert all(0.0 <= s <= 1.0 for s in scores.values())
    # Tier-1 transits must dominate edge networks.
    tier1 = [world.ases[a].asn for a in scores if world.ases[a].tier == 1]
    tier3 = [world.ases[a].asn for a in scores if world.ases[a].tier == 3]
    mean1 = sum(scores[a] for a in tier1) / len(tier1)
    mean3 = sum(scores[a] for a in tier3) / len(tier3)
    assert mean1 > mean3 * 5


def test_dependency_graph_edges_weighted(world):
    graph = build_as_dependency_graph(world, sample_sources=20)
    for _, _, data in graph.edges(data=True):
        assert 0.0 < data["weight"] <= 1.0


def test_cable_dependency_graph_bipartite(world):
    graph = build_cable_dependency_graph(world)
    for node_a, node_b in graph.edges():
        kinds = {node_a[0], node_b[0]}
        assert kinds == {"cable", "as"}


def test_shared_cable_ases(world):
    shared = shared_cable_ases(world, ["cable-seamewe-5", "cable-aae-1"])
    for asn in shared:
        cables = {
            l.cable_id
            for l in world.links_by_asn[asn]
            if l.cable_id in ("cable-seamewe-5", "cable-aae-1")
        }
        assert len(cables) == 2


# -- cascade ---------------------------------------------------------------------------

def test_cascade_no_failures_is_quiet(world):
    result = propagate_cascade(world, [])
    assert result.rounds == []
    assert result.final_failed_link_ids == []


def test_cascade_monotone_and_bounded(world):
    initial = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    result = propagate_cascade(world, initial,
                               initial_cable_ids=["cable-seamewe-5"],
                               max_rounds=5)
    assert set(initial) <= set(result.final_failed_link_ids)
    assert result.total_rounds <= 5
    seen = set(initial)
    for rnd in result.rounds[1:]:
        newly = set(rnd.newly_failed_link_ids)
        assert newly.isdisjoint(seen - newly) or newly <= seen | newly
        seen |= newly


def test_cascade_timeline_layers(world):
    initial = [l.id for l in world.links_on_cable("cable-aae-1")]
    result = propagate_cascade(world, initial, initial_cable_ids=["cable-aae-1"])
    layers = {event["layer"] for event in result.timeline()}
    assert "cable" in layers
    assert "ip" in layers


def test_cascade_lower_threshold_fails_more(world):
    initial = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    strict = propagate_cascade(world, initial, overload_threshold=2.0)
    loose = propagate_cascade(world, initial, overload_threshold=0.5)
    assert len(loose.final_failed_link_ids) >= len(strict.final_failed_link_ids)


def test_cascade_round_records_shed_load(world):
    corridor = ["cable-seamewe-5", "cable-aae-1", "cable-seamewe-4"]
    initial = []
    for cid in corridor:
        initial.extend(l.id for l in world.links_on_cable(cid))
    result = propagate_cascade(world, initial, initial_cable_ids=corridor)
    assert result.rounds
    first = result.rounds[0]
    assert first.load_shed_gbps >= 0.0
    assert first.newly_failed_link_ids == sorted(set(initial))
