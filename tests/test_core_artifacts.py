"""Artifacts: serialisation round-trips and accessor behaviour."""

import json

import pytest

from repro.core.artifacts import (
    CandidateWorkflow,
    Complexity,
    Constraint,
    ProblemAnalysis,
    ProblemKind,
    Risk,
    StepType,
    SubProblem,
    SuccessCriterion,
    WorkflowDesign,
    WorkflowStep,
)


def _analysis():
    return ProblemAnalysis(
        query="q",
        intent="cable_failure_impact",
        entities={"cable_names": ["SeaMeWe-5"]},
        complexity=Complexity.MODERATE,
        classification={"spatial": "country"},
        sub_problems=[
            SubProblem(id="sp1", title="t", description="d",
                       kind=ProblemKind.MAPPING,
                       required_capabilities=["cable_dependencies"]),
            SubProblem(id="sp2", title="t2", description="d2",
                       kind=ProblemKind.SYNTHESIS, depends_on=["sp1"]),
        ],
        constraints=[Constraint(kind="data", description="c", blocking=True)],
        risks=[Risk(description="r", likelihood="low", mitigation="m")],
        success_criteria=[SuccessCriterion(description="s", metric="m")],
    )


def test_analysis_roundtrip():
    analysis = _analysis()
    clone = ProblemAnalysis.from_dict(json.loads(json.dumps(analysis.to_dict())))
    assert clone.to_dict() == analysis.to_dict()
    assert clone.complexity is Complexity.MODERATE
    assert clone.sub_problems[0].kind is ProblemKind.MAPPING


def test_analysis_accessors():
    analysis = _analysis()
    assert analysis.sub_problem("sp2").depends_on == ["sp1"]
    with pytest.raises(KeyError):
        analysis.sub_problem("nope")
    assert [c.description for c in analysis.blocking_constraints()] == ["c"]


def test_step_binding_ids_include_foreach():
    step = WorkflowStep(
        id="s3", step_type=StepType.REGISTRY, target="xaminer.process_event",
        inputs={"event_spec": "item", "seed": "workflow:seed"},
        foreach="step:s2.earthquake",
    )
    assert step.binding_step_ids() == ["s2"]


def test_workflow_design_roundtrip():
    design = WorkflowDesign(
        chosen=CandidateWorkflow(
            steps=[
                WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                             target="nautilus.list_cables", inputs={}),
                WorkflowStep(id="s2", step_type=StepType.TRANSFORM,
                             target="build_report",
                             inputs={"ranking": "step:s1",
                                     "dependencies": "step:s1",
                                     "title": 'const:"x"'}),
            ],
            rationale="why",
            tradeoffs={"reliability": "high"},
        ),
        exploration_mode="comparative",
        alternatives=[CandidateWorkflow(rationale="alt")],
        workflow_inputs={"seed": "rng seed"},
        param_defaults={"seed": 0},
    )
    clone = WorkflowDesign.from_dict(json.loads(json.dumps(design.to_dict())))
    assert clone.to_dict() == design.to_dict()
    assert clone.chosen.step("s2").target == "build_report"
    with pytest.raises(KeyError):
        clone.chosen.step("missing")


def test_frameworks_used_ignores_transforms():
    workflow = CandidateWorkflow(
        steps=[
            WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                         target="nautilus.list_cables", inputs={}),
            WorkflowStep(id="s2", step_type=StepType.REGISTRY,
                         target="bgp.fetch_updates", inputs={}),
            WorkflowStep(id="s3", step_type=StepType.TRANSFORM,
                         target="build_report", inputs={}),
        ]
    )
    assert workflow.frameworks_used() == ["bgp", "nautilus"]
