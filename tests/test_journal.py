"""Durability plane: WAL framing, torn-tail repair, recovery, quarantine."""

import json
import os
import zlib

import pytest

from repro.live import EventBus, ForensicTrigger
from repro.live.forensics import ForensicCase
from repro.live.standing import StandingQuery, StandingQueryManager
from repro.serve import (
    DeadLetterQueue,
    JobState,
    JournalState,
    PoisonJobQuarantined,
    PriorityScheduler,
    QueryBroker,
    QueueSaturated,
    ReplayedResult,
    SchedulerSaturated,
    ServeConfig,
    WriteAheadJournal,
    replay_directory,
    run_campaign,
)
from repro.serve.campaign import CampaignJob
from repro.serve.journal import (
    encode_record,
    iter_valid_records,
    read_segment,
    segment_paths,
)
from repro.serve.provenance import ProvenanceLedger
from repro.serve.recovery import restore_ledger

CS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"


def _submit_record(i, key=None, **extra):
    rec = {"ticket": f"job-{i:06d}", "key": key or f"k{i}", "query": "q",
           "params": None, "world_key": "default", "priority": 0}
    rec.update(extra)
    return rec


def _complete_record(i, key=None, status="done", **extra):
    rec = {"ticket": f"job-{i:06d}", "key": key or f"k{i}", "query": "q",
           "world_key": "default", "status": status, "digest": f"d{i}"}
    rec.update(extra)
    return rec


# -- framing ----------------------------------------------------------------


def test_encode_iter_roundtrip():
    records = [{"kind": "submit", "n": i, "text": "päyload"} for i in range(5)]
    raw = b"".join(encode_record(r) for r in records)
    out = list(iter_valid_records(raw))
    assert [r for _, r in out] == records
    assert out[-1][0] == len(raw)


def test_corrupt_crc_stops_iteration():
    good = encode_record({"kind": "submit", "n": 1})
    bad = bytearray(encode_record({"kind": "submit", "n": 2}))
    bad[25] ^= 0xFF  # flip one payload byte: CRC no longer matches
    out = list(iter_valid_records(good + bytes(bad)))
    assert [r for _, r in out] == [{"kind": "submit", "n": 1}]


def test_non_dict_payload_rejected():
    payload = json.dumps([1, 2, 3]).encode()
    framed = b"%08x %08x " % (zlib.crc32(payload), len(payload)) + payload + b"\n"
    assert list(iter_valid_records(framed)) == []


def test_torn_tail_truncation_at_every_byte_offset(tmp_path):
    """Cut the final record at EVERY byte offset: replay must never raise,
    never resurrect any part of the torn record, and keep every earlier
    record intact."""
    keep = [{"kind": "submit", "n": i} for i in range(3)]
    last = {"kind": "complete", "n": 3, "digest": "x" * 16}
    prefix = b"".join(encode_record(r) for r in keep)
    tail = encode_record(last)
    for cut in range(len(tail)):  # excludes the intact record itself
        path = tmp_path / f"wal-{cut:08d}.log"
        path.write_bytes(prefix + tail[:cut])
        records, torn = read_segment(str(path), truncate=True)
        assert records == keep, f"offset {cut} resurrected a torn record"
        assert torn == cut
        assert path.read_bytes() == prefix  # repaired in place
    # The intact record, for contrast, survives.
    path = tmp_path / "wal-99999999.log"
    path.write_bytes(prefix + tail)
    records, torn = read_segment(str(path))
    assert records == keep + [last] and torn == 0


def test_reopened_journal_appends_after_torn_tail(tmp_path):
    journal = WriteAheadJournal(str(tmp_path))
    journal.append("submit", _submit_record(1))
    journal.close()
    # Tear the live segment mid-record, then reopen and keep appending.
    seq_paths = segment_paths(str(tmp_path))
    seg = seq_paths[-1][1]
    raw = open(seg, "rb").read()
    with open(seg, "wb") as handle:
        handle.write(raw + b"deadbeef torn-gar")
    journal = WriteAheadJournal(str(tmp_path))
    assert journal.replay_stats.truncated_bytes == len(b"deadbeef torn-gar")
    journal.append("complete", _complete_record(1))
    journal.close()
    state, stats = replay_directory(str(tmp_path))
    assert stats.truncated_bytes == 0
    assert state.pending() == []
    assert state.completions["k1"]["digest"] == "d1"


# -- rotation, checkpointing, compaction ------------------------------------


def test_segment_rotation_bounds_file_size(tmp_path):
    journal = WriteAheadJournal(str(tmp_path), max_segment_bytes=1024,
                                checkpoint_every=10_000)
    for i in range(40):
        journal.append("submit", _submit_record(i))
    journal.close()
    seqs = segment_paths(str(tmp_path))
    assert len(seqs) > 1
    state, stats = replay_directory(str(tmp_path))
    assert stats.replayed_records == 40
    assert len(state.pending()) == 40


def test_checkpoint_compacts_and_preserves_state(tmp_path):
    journal = WriteAheadJournal(str(tmp_path), checkpoint_every=8)
    for i in range(20):
        journal.append("submit", _submit_record(i))
    for i in range(12):
        journal.append("complete", _complete_record(i))
    journal.close()
    # Compaction deleted covered segments: footprint is one checkpoint plus
    # the segments appended since.
    assert len(segment_paths(str(tmp_path))) <= 2
    state, stats = replay_directory(str(tmp_path))
    assert stats.checkpoint  # a checkpoint was loaded
    assert len(state.completions) == 12
    assert [r["ticket"] for r in state.pending()] == [
        f"job-{i:06d}" for i in range(12, 20)
    ]


def test_torn_checkpoint_falls_back_to_older_one(tmp_path):
    journal = WriteAheadJournal(str(tmp_path))
    for i in range(6):
        journal.append("submit", _submit_record(i))
    journal.checkpoint()
    journal.append("complete", _complete_record(0))
    journal.close()
    # A crash mid-compaction leaves a garbage newer checkpoint.
    (tmp_path / "checkpoint-00000099.json").write_bytes(b'{"version": 1, "st')
    state, stats = replay_directory(str(tmp_path))
    assert "checkpoint-00000099" not in stats.checkpoint
    assert len(state.completions) == 1
    assert len(state.pending()) == 5


def test_unsupported_checkpoint_version_raises(tmp_path):
    (tmp_path / "checkpoint-00000001.json").write_text(
        json.dumps({"version": 99, "state": {}}))
    from repro.serve.journal import JournalError

    with pytest.raises(JournalError):
        replay_directory(str(tmp_path))


# -- the state reducer ------------------------------------------------------


def test_reducer_cancel_removes_pending_and_unknown_kinds_are_noops():
    state = JournalState()
    state.apply({"kind": "submit", **_submit_record(1)})
    state.apply({"kind": "submit", **_submit_record(2)})
    state.apply({"kind": "cancel", "ticket": "job-000001"})
    state.apply({"kind": "from_the_future", "anything": True})
    assert [r["ticket"] for r in state.pending()] == ["job-000002"]
    assert state.max_ticket == 2


def test_reducer_deadletter_drain_roundtrip():
    state = JournalState()
    state.apply({"kind": "deadletter", "world_key": "w", "query": "q"})
    sig = JournalState.signature("w", "q")
    assert sig in state.deadletter
    state.apply({"kind": "deadletter_drain", "sigs": [sig]})
    assert state.deadletter == {}


def test_replayed_result_quacks_like_pipeline_result():
    result = ReplayedResult({"status": "done", "digest": "abc",
                             "final": {"ranking": []}, "query": CS1})
    assert result.execution.succeeded
    assert result.artifact_digest() == "abc"
    assert result.execution.outputs["final"] == {"ranking": []}
    assert result.replayed and result.stage_trace == []
    failed = ReplayedResult({"status": "failed", "error": "boom"})
    assert not failed.execution.succeeded and failed.execution.error == "boom"


def test_restore_ledger_rebuilds_completion_rows():
    state = JournalState()
    state.apply({"kind": "submit", "ts": 1.0, **_submit_record(1)})
    state.apply({"kind": "claim", "ticket": "job-000001", "worker": "w-0",
                 "ts": 2.0})
    state.apply({"kind": "retry", "ticket": "job-000001"})
    state.apply({"kind": "complete", "ts": 3.0, **_complete_record(1)})
    ledger = ProvenanceLedger()
    assert restore_ledger(ledger, state) == 1
    entry = ledger.get("job-000001")
    assert entry.worker == "w-0"
    assert entry.retries == 1
    assert entry.status == "done"
    assert entry.submitted_at == 1.0 and entry.finished_at == 3.0


# -- dead-letter queue ------------------------------------------------------


def test_deadletter_quarantine_drain_survives_reopen(tmp_path):
    with WriteAheadJournal(str(tmp_path)) as journal:
        queue = DeadLetterQueue(journal=journal)
        queue.quarantine("default", CS1, key="k", crashes=3,
                         worker_slots=[0, 1], error="3 worker deaths")
        assert queue.depth == 1 and queue.contains("default", CS1)
    # Reopen: quarantine re-arms from the journal.
    with WriteAheadJournal(str(tmp_path)) as journal:
        queue = DeadLetterQueue(journal=journal)
        assert queue.contains("default", CS1)
        drained = queue.drain()
        assert len(drained) == 1
        assert drained[0]["crashes"] == 3
        assert sorted(drained[0]["worker_slots"]) == [0, 1]
        assert queue.depth == 0
    # Reopen again: the drain was journaled too.
    with WriteAheadJournal(str(tmp_path)) as journal:
        queue = DeadLetterQueue(journal=journal)
        assert queue.depth == 0 and not queue.contains("default", CS1)


def test_scheduler_saturation_raises():
    scheduler = PriorityScheduler(max_depth=2)

    class _Job:
        world_key = "default"

    scheduler.push(_Job(), priority=0, shard="default")
    scheduler.push(_Job(), priority=0, shard="default")
    with pytest.raises(SchedulerSaturated):
        scheduler.push(_Job(), priority=0, shard="default")
    stats = scheduler.stats()
    assert stats["rejected"] == 1 and stats["max_depth"] == 2


# -- journaled broker: exactly-once resume ----------------------------------


@pytest.fixture()
def journaled_broker(world, tmp_path):
    def make():
        return QueryBroker(world, config=ServeConfig(
            workers=2, journal_dir=str(tmp_path / "wal"))).start()
    return make


def test_campaign_resume_replays_completions_byte_identically(
        world, journaled_broker):
    jobs = [CampaignJob(query=CS1, tag="cs1"),
            CampaignJob(query=CS1.replace("SeaMeWe-5", "FALCON"), tag="falcon")]
    broker = journaled_broker()
    try:
        report = run_campaign(broker, jobs, timeout=120)
        assert report.all_succeeded and report.replayed == 0
        digests = sorted(broker.wait(t).result.artifact_digest()
                         for t in report.tickets)
    finally:
        broker.shutdown()
    broker = journaled_broker()
    try:
        assert broker.recovery.completions == 2
        assert broker.recovery.pending == []
        report2 = run_campaign(broker, jobs, timeout=120)
        assert report2.all_succeeded
        assert report2.replayed == 2  # nothing re-ran
        digests2 = sorted(broker.wait(t).result.artifact_digest()
                          for t in report2.tickets)
        assert digests2 == digests
        assert all(broker.job(t).replayed for t in report2.tickets)
    finally:
        broker.shutdown()


def test_unfinished_submissions_resume_on_start(world, tmp_path):
    wal = str(tmp_path / "wal")
    # Forge a crashed run: a journaled submission with no completion.
    with WriteAheadJournal(wal) as journal:
        from repro.serve import affinity_key

        config = ServeConfig(workers=1, journal_dir=wal)
        probe = QueryBroker(world, config=config)
        key = affinity_key(probe.shard(), CS1, None)
        probe.shutdown()
        journal.append("submit", {"ticket": "job-000007", "key": key,
                                  "query": CS1, "params": None,
                                  "world_key": "default", "priority": 0})
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal)).start()
    try:
        assert broker.recovery.resubmitted == 1
        # The resumed job and a duplicate campaign submit share one ticket.
        ticket = broker.submit(CS1)
        job = broker.wait(ticket, timeout=120)
        assert job.state is JobState.DONE
        assert broker.stats()["submitted"] == 1
    finally:
        broker.shutdown()


def test_failed_completion_reruns_fresh(world, tmp_path):
    wal = str(tmp_path / "wal")
    config = ServeConfig(workers=1, journal_dir=wal)
    probe = QueryBroker(world, config=config)
    from repro.serve import affinity_key

    key = affinity_key(probe.shard(), CS1, None)
    probe.shutdown()
    with WriteAheadJournal(wal) as journal:
        journal.append("submit", {"ticket": "job-000001", "key": key,
                                  "query": CS1, "params": None,
                                  "world_key": "default", "priority": 0})
        journal.append("complete", {"ticket": "job-000001", "key": key,
                                    "query": CS1, "world_key": "default",
                                    "status": "failed", "error": "crash"})
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal)).start()
    try:
        ticket = broker.submit(CS1)
        job = broker.wait(ticket, timeout=120)
        assert not job.replayed  # failed completions re-run, not re-join
        assert job.state is JobState.DONE
    finally:
        broker.shutdown()


def test_circuit_open_submission_goes_straight_to_quarantine(world, tmp_path):
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=str(tmp_path / "wal"))).start()
    try:
        broker.deadletter.quarantine("default", CS1, crashes=3,
                                     error="3 worker deaths")
        ticket = broker.submit(CS1)
        job = broker.wait(ticket, timeout=10)
        assert job.state is JobState.QUARANTINED
        assert "circuit breaker" in job.error
        assert broker.stats()["finished_total"]["quarantined"] == 1
        assert broker.ledger.get(ticket).status == "quarantined"
        # Draining re-closes the circuit: the same query runs for real.
        assert len(broker.deadletter.drain()) == 1
        ticket = broker.submit(CS1)
        assert broker.wait(ticket, timeout=120).state is JobState.DONE
    finally:
        broker.shutdown()


def test_quarantined_outcome_settles_ticket(world, tmp_path):
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=str(tmp_path / "wal")))
    try:
        ticket = broker.submit(CS1)
        job = broker.job(ticket)
        job.state = JobState.RUNNING  # as if a worker had claimed it
        broker._settle(job, PoisonJobQuarantined("3 worker deaths"))
        assert job.state is JobState.QUARANTINED
        assert broker.journal.state.completions[job.key]["quarantined"] is True
    finally:
        broker.shutdown()


# -- standing/forensic journaling -------------------------------------------


def test_standing_registrations_journal_and_restore(world, tmp_path):
    wal = str(tmp_path / "wal")
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal))
    manager = StandingQueryManager(broker)
    manager.register(StandingQuery(name="watch", query=CS1, priority=2,
                                   every_n_epochs=3))
    manager.register(StandingQuery(name="gone", query=CS1))
    manager.deregister("gone")
    broker.shutdown()

    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal))
    try:
        assert [r["name"] for r in broker.recovery.standing] == ["watch"]
        manager = StandingQueryManager(broker)
        restored = manager.restore_registrations()
        assert [sq.name for sq in restored] == ["watch"]
        assert restored[0].priority == 2
        assert restored[0].every_n_epochs == 3
        assert manager.names() == ["watch"]
        # Idempotent: nothing new on a second pass.
        assert manager.restore_registrations() == []
    finally:
        broker.shutdown()


def test_forensic_case_transitions_journal_open_and_close(world, tmp_path):
    wal = str(tmp_path / "wal")
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal))
    bus = EventBus()
    trigger = ForensicTrigger(bus, broker)
    trigger._journal_case({"case_id": "case-001", "state": "open",
                           "alert_kind": "rtt_shift"})
    broker.shutdown()
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=wal))
    try:
        assert [c["case_id"] for c in broker.recovery.open_cases] == ["case-001"]
        trigger = ForensicTrigger(bus, broker)
        trigger._journal_case({"case_id": "case-001", "state": "closed",
                               "verdict": "confirmed"})
        assert broker.journal.state.open_cases() == []
        merged = broker.journal.state.cases["case-001"]
        assert merged["alert_kind"] == "rtt_shift"  # transitions merged
        assert merged["verdict"] == "confirmed"
    finally:
        broker.shutdown()


def test_forensic_trigger_backs_off_then_succeeds(world, monkeypatch):
    from repro.live.forensics import TriggerPolicy

    broker = QueryBroker(world, config=ServeConfig(workers=1))
    try:
        bus = EventBus()
        trigger = ForensicTrigger(
            bus, broker,
            policy=TriggerPolicy(submit_retry_limit=3, submit_backoff_s=0.0))
        calls = {"n": 0}

        def flaky_submit(query, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise QueueSaturated("full")
            return "job-000042"

        monkeypatch.setattr(broker, "submit", flaky_submit)
        case = ForensicCase(
            case_id="case-001", alert_kind="rtt_shift", series_key="DE->JP",
            alert_epoch=1, alert_magnitude=9.0, episode_epoch=1,
            event_id=None, expected_cables=(), fingerprint="fp",
            query=CS1, world_key="default")
        assert trigger._submit_with_backoff(case) == "job-000042"
        assert calls["n"] == 3
        assert trigger._counts["submit_retries"] == 2
        assert trigger._counts["submit_rejected"] == 0
    finally:
        broker.shutdown()


def test_forensic_trigger_rejection_is_counted_not_silent(world, monkeypatch):
    from repro.live.forensics import TriggerPolicy

    broker = QueryBroker(world, config=ServeConfig(workers=1))
    try:
        bus = EventBus()
        trigger = ForensicTrigger(
            bus, broker,
            policy=TriggerPolicy(submit_retry_limit=1, submit_backoff_s=0.0))

        def saturated_submit(query, **kwargs):
            raise QueueSaturated("full")

        monkeypatch.setattr(broker, "submit", saturated_submit)
        case = ForensicCase(
            case_id="case-001", alert_kind="rtt_shift", series_key="DE->JP",
            alert_epoch=1, alert_magnitude=9.0, episode_epoch=1,
            event_id=None, expected_cables=(), fingerprint="fp",
            query=CS1, world_key="default")
        assert trigger._submit_with_backoff(case) is None
        assert trigger._counts["submit_rejected"] == 1
        snapshot = trigger._metrics.snapshot()
        assert any("forensic_submit_rejected_total" in name
                   for name in snapshot.get("counters", snapshot))
    finally:
        broker.shutdown()


# -- introspection surfaces -------------------------------------------------


def test_debug_deadletter_endpoint(world, tmp_path):
    import urllib.request

    from repro.obs import ObsServer

    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=str(tmp_path / "wal")))
    broker.deadletter.quarantine("default", CS1, crashes=2, worker_slots=[0])
    server = ObsServer(port=0, broker=broker).start()
    try:
        with urllib.request.urlopen(server.url("/debug/deadletter")) as resp:
            doc = json.loads(resp.read())
        assert doc["depth"] == 1
        assert doc["entries"][0]["query"] == CS1
        assert doc["entries"][0]["crashes"] == 2
    finally:
        server.stop()
        broker.shutdown()


def test_cli_drain_deadletter(world, tmp_path, capsys):
    from repro.cli import main

    wal = str(tmp_path / "wal")
    with WriteAheadJournal(wal) as journal:
        DeadLetterQueue(journal=journal).quarantine(
            "default", CS1, crashes=3, worker_slots=[0, 1])
    assert main(["--drain-deadletter", "--journal-dir", wal]) == 0
    out = capsys.readouterr().out
    assert "drained 1 quarantined signature" in out
    with WriteAheadJournal(wal) as journal:
        assert DeadLetterQueue(journal=journal).depth == 0
    # Draining an empty queue is a no-op, not an error.
    assert main(["--drain-deadletter", "--journal-dir", wal]) == 0
    assert "nothing drained" in capsys.readouterr().out
    # And it requires a journal directory to act on.
    assert main(["--drain-deadletter"]) == 2


def test_journal_metrics_surface(world, tmp_path):
    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=str(tmp_path / "wal"))).start()
    try:
        ticket = broker.submit(CS1)
        broker.wait(ticket, timeout=120)
        text = broker.metrics.prometheus_text(refresh=True)
        assert "journal_appends_total" in text
        assert "journal_fsync_ms" in text
        assert "recovery_replayed_records" in text
        assert "deadletter_depth" in text
    finally:
        broker.shutdown()
