"""CLI: argument handling and end-to-end runs."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["some query"])
    assert args.query == "some query"
    assert args.seed == 7
    assert not args.json


def test_list_cables(capsys):
    assert main(["--list-cables"]) == 0
    out = capsys.readouterr().out
    assert "SeaMeWe-5" in out
    assert "Tbps" in out


def test_query_required(capsys):
    assert main([]) == 2
    assert "query is required" in capsys.readouterr().err


def test_cs1_text_output(capsys):
    code = main(["--frameworks", "nautilus", "--no-curate",
                 "Identify the impact at a country level due to SeaMeWe-5 "
                 "cable failure"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cable_failure_impact" in out
    assert "answer:" in out


def test_json_output_parses(capsys):
    code = main(["--json", "--no-curate",
                 "How exposed is Singapore to single cable failures?"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["analysis"]["intent"] == "risk_assessment"
    assert payload["execution"]["succeeded"]
    assert "lines; rerun with --show-code" in payload["solution"]["source_code"]


def test_show_code_prints_source(capsys):
    code = main(["--show-code", "--no-curate", "--frameworks", "nautilus",
                 "Identify the impact at a country level due to FALCON "
                 "cable failure"])
    assert code == 0
    out = capsys.readouterr().out
    assert "def run(catalog, params=None):" in out


def test_incident_flag_enables_forensics(capsys):
    code = main(["--incident", "SeaMeWe-5", "--no-curate", "--json",
                 "A sudden increase in latency was observed from European "
                 "probes to Asian destinations starting three days ago. "
                 "Determine if a submarine cable failure caused this, and if "
                 "so, identify the specific cable."])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    final = payload["execution"]["outputs"]["final"]
    assert final["identified_cable_name"] == "SeaMeWe-5"


def test_parser_serve_defaults():
    args = build_parser().parse_args(["--batch", "--workers", "8"])
    assert args.batch and args.workers == 8
    assert args.backend == "thread"
    assert not args.serve and not args.no_cache


def test_parser_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--batch", "--backend", "smoke-signals"])


def test_batch_mode_process_backend(capsys):
    code = main(["--batch", "--limit", "2", "--workers", "2",
                 "--backend", "process", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] == 0
    assert payload["total"] == 4


def test_batch_mode_runs_campaign(capsys):
    code = main(["--batch", "--limit", "2", "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign:" in out
    assert "jobs/s" in out
    assert "top exposed countries" in out


def test_batch_mode_json(capsys):
    code = main(["--batch", "--limit", "2", "--workers", "2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 4  # 2 cables + 2 disaster kinds
    assert payload["failed"] == 0
    assert payload["cache"]["hit_rate"] >= 0.0
    assert payload["ledger"]["per_stage"]["querymind"]["calls"] == 4


def test_batch_mode_no_cache(capsys):
    code = main(["--batch", "--limit", "1", "--workers", "1", "--no-cache",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache"] is None


def test_serve_mode_reads_stdin(capsys, monkeypatch):
    import io

    queries = ("Identify the impact at a country level due to SeaMeWe-5 "
               "cable failure\n") * 2
    monkeypatch.setattr("sys.stdin", io.StringIO(queries))
    code = main(["--serve", "--workers", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("done") == 2
    assert "cache hit rate" in out


def test_serve_mode_rejects_empty_stdin(capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("\n\n"))
    assert main(["--serve"]) == 2
    assert "one query per line" in capsys.readouterr().err


def test_serve_mode_json(capsys, monkeypatch):
    import io

    queries = ("Identify the impact at a country level due to SeaMeWe-5 "
               "cable failure\n") * 2
    monkeypatch.setattr("sys.stdin", io.StringIO(queries))
    code = main(["--serve", "--workers", "2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["jobs"]) == 2
    assert all(j["state"] == "done" for j in payload["jobs"])
    assert payload["jobs"][0]["final"]["title"]
    assert payload["ledger"]["per_stage"]["querymind"]["calls"] == 2


def test_parser_profile_flag_defaults_off():
    args = build_parser().parse_args(["--batch"])
    assert args.profile is False


def test_profile_wraps_batch_and_writes_pstats(capsys, tmp_path):
    import pstats

    code = main(["--batch", "--limit", "1", "--workers", "1",
                 "--cache-dir", str(tmp_path), "--profile"])
    assert code == 0
    captured = capsys.readouterr()
    assert "profile:" in captured.err
    dump = tmp_path / "profile.pstats"
    assert dump.exists()
    stats = pstats.Stats(str(dump))  # loadable, non-trivial profile
    assert stats.total_calls > 0


def test_profile_ignored_for_single_shot_query(capsys):
    code = main(["Identify the impact at a country level due to "
                 "SeaMeWe-5 cable failure", "--profile"])
    assert code == 0
    assert "ignoring it for a single-shot query" in capsys.readouterr().err
