"""The unified observability plane: tracing + one metrics registry.

Covers the obs primitives in isolation, the wiring that threads trace
context across the broker/worker process boundary, the provenance join
(ledger rows carry ``trace_id``), the alert-to-forensic-case trace
linkage, the EventBus drop accounting regression, and the CLI export
surface (``--trace-out`` Chrome trace JSON).
"""

import json
import logging
import os
import threading

import pytest

from repro.live import ALERTS_TOPIC, EventBus, LiveConfig, run_live_replay
from repro.live.forensics import ForensicTrigger
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    TraceContext,
    Tracer,
    TraceSink,
    resolve_tracer,
)
from repro.serve import JobState, QueryBroker, ServeConfig
from repro.serve.campaign import CABLE_IMPACT_TEMPLATE
from repro.serve.scheduler import PriorityScheduler

from tests.test_forensics import _alert, _cable_failure, _state


# -- metrics primitives ------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("jobs_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("queue_depth")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0

    hist = registry.histogram("wait_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 3
    assert snap["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
    assert snap["mean"] == pytest.approx(5.55 / 3)


def test_registry_identity_conflicts_and_names():
    registry = MetricsRegistry()
    a = registry.counter("hits", {"scope": "broker", "band": "1"})
    b = registry.counter("hits", {"band": "1", "scope": "broker"})
    assert a is b  # label order canonicalized
    assert registry.counter("hits") is not a
    with pytest.raises(TypeError):
        registry.gauge("hits", {"scope": "broker", "band": "1"})
    with pytest.raises(ValueError):
        registry.counter("bad name!")
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=(1.0, 0.5))


def test_drain_deltas_and_absorb_round_trip():
    worker = MetricsRegistry()
    worker.counter("worker_jobs_total", {"slot": "0"}).inc(3)
    worker.gauge("depth").set(9)  # gauges never travel as deltas
    rows = worker.drain_deltas()
    assert rows == [("worker_jobs_total", (("slot", "0"),), 3.0)]
    assert worker.drain_deltas() == []  # high-water mark advanced
    worker.counter("worker_jobs_total", {"slot": "0"}).inc()
    assert worker.drain_deltas() == [("worker_jobs_total", (("slot", "0"),), 1.0)]

    broker = MetricsRegistry()
    broker.absorb(rows)
    broker.absorb(rows)  # rows are plain data; absorbing twice adds twice
    snap = broker.snapshot()
    assert snap["counters"]['worker_jobs_total{slot="0"}'] == 6.0


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("jobs_total", {"state": "done"}).inc(2)
    registry.gauge("depth").set(1.5)
    registry.histogram("wait_seconds", buckets=(0.5,)).observe(0.1)
    text = registry.prometheus_text()
    lines = text.strip().splitlines()
    assert "# TYPE jobs_total counter" in lines
    assert 'jobs_total{state="done"} 2' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 1.5" in lines
    assert "# TYPE wait_seconds histogram" in lines
    assert 'wait_seconds_bucket{le="0.5"} 1' in lines
    assert 'wait_seconds_bucket{le="+Inf"} 1' in lines
    assert "wait_seconds_sum 0.1" in lines
    assert "wait_seconds_count 1" in lines


def test_collector_refreshes_gauges_at_scrape_time():
    registry = MetricsRegistry()
    source = {"depth": 0}
    registry.register_collector(
        lambda reg: reg.gauge("live_depth").set(source["depth"])
    )
    source["depth"] = 7
    assert registry.snapshot()["gauges"]["live_depth"] == 7.0
    source["depth"] = 2
    assert "live_depth 2" in registry.prometheus_text()
    assert registry.snapshot(refresh=False)["gauges"]["live_depth"] == 2.0


# -- tracing primitives ------------------------------------------------------


def test_span_nesting_and_idempotent_end():
    tracer = Tracer(label="t")
    parent = tracer.start_span("job", cat="serve")
    child = tracer.start_span("dispatch", parent=parent)
    child.end()
    child.end()  # idempotent: settles from multiple paths
    parent.annotate(state="done").end()
    records = tracer.records()
    assert len(records) == 2
    by_name = {r["name"]: r for r in records}
    assert by_name["dispatch"]["parent_id"] == parent.context.span_id
    assert by_name["dispatch"]["trace_id"] == parent.context.trace_id
    assert by_name["job"]["parent_id"] is None
    assert by_name["job"]["args"]["state"] == "done"


def test_add_span_backdates_and_parents():
    tracer = Tracer(label="t", clock=lambda: 100.0)
    ctx = tracer.add_span("alert.rtt_shift", cat="alert", duration_s=2.0)
    follow = tracer.start_span("forensic.case", parent=ctx)
    follow.end(end_ts=101.0)
    alert, case = tracer.records()
    assert alert["ts"] == pytest.approx(98.0)
    assert alert["dur"] == pytest.approx(2.0)
    assert case["parent_id"] == ctx.span_id
    assert case["trace_id"] == ctx.trace_id


def test_trace_context_survives_serialization():
    ctx = TraceContext("abc123", "1-1", None).child_of()
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    assert ctx.parent_id == "1-1"


def test_tracer_bounds_its_buffer():
    tracer = Tracer(label="t", max_spans=2)
    for i in range(4):
        tracer.add_span(f"s{i}")
    stats = tracer.stats()
    assert stats["spans"] == 2
    assert stats["dropped"] == 2
    assert len(tracer.drain()) == 2
    assert tracer.records() == []


def test_null_tracer_is_inert():
    assert resolve_tracer(None) is NULL_TRACER
    tracer = Tracer(label="x")
    assert resolve_tracer(tracer) is tracer
    assert not NULL_TRACER.enabled
    span = NULL_TRACER.start_span("anything", parent=NULL_SPAN)
    assert span is NULL_SPAN
    span.annotate(a=1).end()
    assert NULL_TRACER.add_span("x") is None
    assert NULL_TRACER.drain() == []
    assert NULL_TRACER.ingest([{"name": "s"}]) == 0


def test_chrome_export_schema(tmp_path):
    tracer = Tracer(label="broker")
    root = tracer.start_span("job", cat="serve", ticket="job-1")
    tracer.start_span("dispatch", parent=root).end()
    root.end()
    path = tmp_path / "trace.json"
    TraceSink(str(path)).write(tracer.records())
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["args"]["name"] == "broker"
    assert {e["name"] for e in spans} == {"job", "dispatch"}
    for event in spans:
        assert isinstance(event["ts"], int)
        assert isinstance(event["dur"], int) and event["dur"] >= 1
        assert event["args"]["trace_id"] == root.context.trace_id
        assert "span_id" in event["args"] and "parent_id" in event["args"]


# -- EventBus drop accounting (regression: drops were silent) ----------------


def test_bus_drops_are_counted_and_warned_once(caplog):
    registry = MetricsRegistry()
    bus = EventBus(metrics=registry)
    sub = bus.subscribe("alerts", name="slowpoke", maxlen=2)
    with caplog.at_level(logging.WARNING, logger="repro.live.bus"):
        for i in range(5):
            bus.publish("alerts", {"n": i})
    assert sub.dropped == 3
    assert sub.stats()["dropped"] == 3
    assert bus.stats()["dropped_total"] == 3
    # Oldest shed first: the survivors are the newest maxlen messages.
    assert [m["n"] for m in sub.drain()] == [3, 4]
    snap = registry.snapshot()
    key = 'bus_dropped_total{subscriber="slowpoke",topic="alerts"}'
    assert snap["counters"][key] == 3.0
    assert snap["counters"]['bus_published_total{topic="alerts"}'] == 5.0
    warnings = [r for r in caplog.records if "dropping oldest" in r.message]
    assert len(warnings) == 1  # once per subscriber, not per message


# -- serve integration: spans across the broker and its backends -------------


def _span_index(records):
    return {r["span_id"]: r for r in records}


def test_thread_backend_trace_topology_and_ledger_join(world):
    query = CABLE_IMPACT_TEMPLATE.format(cable=world.cable_names()[0])
    with QueryBroker(world, config=ServeConfig(workers=1,
                                               tracing=True)) as broker:
        ticket = broker.submit(query)
        job = broker.wait(ticket)
        assert job.state is JobState.DONE
        assert job.trace_id
        # Satellite: provenance rows join against the trace.
        ledger_row = broker.ledger.get(ticket)
        assert ledger_row.trace_id == job.trace_id
        assert ledger_row.to_dict()["trace_id"] == job.trace_id
        records = broker.tracer.records(job.trace_id)

    by_name = {r["name"]: r for r in records}
    for name in ("job", "queue.wait", "dispatch", "pipeline.answer"):
        assert name in by_name, sorted(by_name)
    assert any(n.startswith("stage.") for n in by_name)
    assert by_name["job"]["parent_id"] is None
    assert by_name["queue.wait"]["parent_id"] == by_name["job"]["span_id"]
    assert by_name["dispatch"]["parent_id"] == by_name["job"]["span_id"]
    assert (by_name["pipeline.answer"]["parent_id"]
            == by_name["dispatch"]["span_id"])
    stage = next(r for n, r in by_name.items() if n.startswith("stage."))
    assert stage["parent_id"] == by_name["pipeline.answer"]["span_id"]
    assert by_name["job"]["args"]["state"] == "done"


def test_process_backend_spans_cross_the_process_boundary(world):
    query = CABLE_IMPACT_TEMPLATE.format(cable=world.cable_names()[0])
    config = ServeConfig(workers=1, backend="process", tracing=True)
    with QueryBroker(world, config=config) as broker:
        ticket = broker.submit(query)
        job = broker.wait(ticket)
        assert job.state is JobState.DONE
        records = broker.tracer.records(job.trace_id)
        snap = broker.metrics.snapshot()

    by_name = {r["name"]: r for r in records}
    broker_pid = os.getpid()
    # The worker half of the chain was recorded in another process and
    # came back over the reply pipe.
    assert by_name["worker.execute"]["pid"] != broker_pid
    assert by_name["pipeline.answer"]["pid"] != broker_pid
    assert by_name["dispatch"]["pid"] == broker_pid
    # Parent/child nesting is unbroken across the pickle boundary.
    assert (by_name["worker.execute"]["parent_id"]
            == by_name["dispatch"]["span_id"])
    assert (by_name["pipeline.answer"]["parent_id"]
            == by_name["worker.execute"]["span_id"])
    # Worker-side counter deltas rode the same reply and were absorbed.
    assert snap["counters"]['worker_jobs_total{slot="0"}'] >= 1.0


def test_scheduler_queue_metrics():
    registry = MetricsRegistry()
    scheduler = PriorityScheduler(metrics=registry)
    scheduler.push("a", priority=0)
    scheduler.push("b", priority=2)
    assert registry.gauge("scheduler_queue_depth").value == 2.0
    assert scheduler.pop(timeout=1) == "b"  # higher band first
    assert scheduler.pop(timeout=1) == "a"
    assert registry.gauge("scheduler_queue_depth").value == 0.0
    snap = registry.snapshot()
    assert snap["counters"]["scheduler_pushed_total"] == 2.0
    assert snap["histograms"]['scheduler_queue_wait_seconds{band="0"}']["count"] == 1
    assert snap["histograms"]['scheduler_queue_wait_seconds{band="2"}']["count"] == 1


# -- the alert-to-forensics trace link ---------------------------------------


def test_forensic_case_parents_under_its_alert_trace(world):
    cable_id, links = _cable_failure(world, "MedLoop")
    config = ServeConfig(workers=2, tracing=True)
    with QueryBroker(world, config=config) as broker:
        bus = EventBus(metrics=broker.metrics)
        trigger = ForensicTrigger(bus, broker)
        assert trigger.tracer is broker.tracer
        trigger.on_epoch(_state(world, 0))
        # Mint the alert's trace the way DetectorBank does, and attach it.
        alert = _alert(epoch=1, series="DE->JP")
        ctx = broker.tracer.add_span("alert.rtt_shift", cat="alert",
                                     detector="t", series="DE->JP")
        alert["trace"] = ctx.to_dict()
        bus.publish(ALERTS_TOPIC, alert)
        opened = trigger.on_epoch(
            _state(world, 1, failed_links=links, failed_cables=(cable_id,)))
        assert len(opened) == 1
        case = opened[0]
        assert case.trace_id == ctx.trace_id
        assert case.to_dict()["trace_id"] == ctx.trace_id
        trigger.collect(timeout=240)
        assert case.verdict == "confirmed"
        records = broker.tracer.records(ctx.trace_id)
        snap = broker.metrics.snapshot()

    by_name = {r["name"]: r for r in records}
    case_span = by_name["forensic.case"]
    assert case_span["parent_id"] == ctx.span_id
    assert case_span["args"]["verdict"] == "confirmed"
    # The triggered query's whole span tree shares the alert's trace.
    for name in ("job", "queue.wait", "dispatch", "pipeline.answer"):
        assert by_name[name]["trace_id"] == ctx.trace_id
    assert by_name["job"]["parent_id"] == case_span["span_id"]
    assert snap["counters"]['forensic_cases_total{verdict="confirmed"}'] == 1.0
    hist = snap["histograms"]["forensic_verdict_latency_seconds"]
    assert hist["count"] == 1


def test_live_replay_publishes_metrics_snapshots(world):
    report = run_live_replay(world=world,
                             config=LiveConfig(epochs=3, workers=1))
    assert report.bus_stats["published"]["metrics"] == 3
    counters = report.metrics["counters"]
    assert counters['bus_published_total{topic="metrics"}'] == 3.0
    assert counters["broker_jobs_submitted_total"] >= 1.0
    assert "scheduler_queue_depth" in report.metrics["gauges"]
    assert report.to_dict()["metrics"] == report.metrics


# -- CLI export surface ------------------------------------------------------


def test_cli_single_query_trace_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    rc = main(["Identify the impact at a country level due to SeaMeWe-5 "
               "cable failure", "--trace-out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "pipeline.answer" in names
    assert any(n.startswith("stage.") for n in names)
    capsys.readouterr()


# -- label-value escaping ----------------------------------------------------


def test_prometheus_label_values_are_escaped():
    """Backslash, double-quote and newline in a label value must render
    per the Prometheus text exposition rules, not tear the line."""
    registry = MetricsRegistry()
    hostile = 'a\\b"c\nd'
    registry.counter("probe_total", {"path": hostile, "ok": "clean"}).inc()
    text = registry.prometheus_text()
    assert 'path="a\\\\b\\"c\\nd"' in text
    assert 'ok="clean"' in text
    # The exposition itself stays one-line-per-sample.
    sample_lines = [l for l in text.splitlines() if l.startswith("probe_total")]
    assert len(sample_lines) == 1 and sample_lines[0].endswith(" 1")
    # The snapshot key uses the same rendering, and the SLO engine's
    # key parser round-trips it back to the original label value.
    from repro.obs.health import _matches

    key = next(iter(registry.snapshot()["counters"]))
    assert _matches(key, "probe_total", {"path": hostile})
    assert not _matches(key, "probe_total", {"path": 'a\\b"c'})


# -- tracer thread-safety ----------------------------------------------------


def test_tracer_ingest_and_drain_under_concurrent_writers():
    """Many writers (ingest batches + live spans) against a concurrent
    drainer: no row may be lost or double-counted — every produced row is
    either drained, still buffered, or counted as dropped — and listeners
    see exactly the kept rows."""
    tracer = Tracer(label="hammer", max_spans=2_000)
    seen_by_listener = []
    tracer.add_listener(seen_by_listener.extend)
    writers, batches, batch_size = 8, 40, 5
    produced = writers * batches * batch_size
    start = threading.Barrier(writers + 1)
    drained = []

    def ingest_worker(worker_id: int) -> None:
        start.wait()
        for batch in range(batches):
            tracer.ingest([
                {"name": f"w{worker_id}.b{batch}.r{row}", "cat": "test",
                 "trace_id": f"t{worker_id}", "span_id": f"s{batch}-{row}",
                 "parent_id": None, "pid": os.getpid(), "label": "hammer",
                 "start_ts": 0.0, "end_ts": 0.0, "args": {}}
                for row in range(batch_size)
            ])

    def drain_worker() -> None:
        start.wait()
        for _ in range(200):
            drained.extend(tracer.drain())

    threads = [threading.Thread(target=ingest_worker, args=(i,))
               for i in range(writers)]
    threads.append(threading.Thread(target=drain_worker))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    remaining = tracer.records()
    dropped = tracer.stats()["dropped"]
    assert len(drained) + len(remaining) + dropped == produced
    # No torn/duplicated rows among the kept ones.
    kept_names = [r["name"] for r in drained + remaining]
    assert len(kept_names) == len(set(kept_names))
    assert len(seen_by_listener) == len(drained) + len(remaining)


def test_tracer_add_span_races_with_ingest():
    """Live span recording and cross-process ingest interleave without
    corrupting the bounded buffer (the drop path included)."""
    tracer = Tracer(label="mixed", max_spans=300)
    start = threading.Barrier(4)

    def spanner() -> None:
        start.wait()
        for i in range(200):
            tracer.add_span(f"live.{i}", cat="test")

    def ingester(worker_id: int) -> None:
        start.wait()
        for i in range(200):
            tracer.ingest([{
                "name": f"remote.{worker_id}.{i}", "cat": "test",
                "trace_id": "t", "span_id": f"{worker_id}-{i}",
                "parent_id": None, "pid": 999, "label": "remote",
                "start_ts": 0.0, "end_ts": 0.0, "args": {},
            }])

    threads = [threading.Thread(target=spanner),
               threading.Thread(target=ingester, args=(1,)),
               threading.Thread(target=ingester, args=(2,)),
               threading.Thread(target=spanner)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = tracer.stats()
    assert stats["spans"] == 300  # bounded: the buffer never overshoots
    assert stats["spans"] + stats["dropped"] == 800
