"""Shared fixtures: one world per session, plus common catalogs."""

import pytest

from repro.core.catalog import MeasurementContext, ToolCatalog
from repro.core.registry import default_registry
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="session")
def world():
    """The default deterministic world, shared by the whole test session."""
    return build_world(WorldConfig())


@pytest.fixture(scope="session")
def small_world():
    """A smaller world for tests that rebuild state frequently."""
    return build_world(WorldConfig(seed=3, tier1_count=6, tier2_per_region=2,
                                   edge_density=0.5))


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture()
def catalog(world, registry):
    """A catalog over the shared world with no active incidents."""
    return ToolCatalog(registry, MeasurementContext(world=world))


@pytest.fixture(scope="session")
def incident(world):
    """The canonical forensic incident: SeaMeWe-5 fails three days ago."""
    return make_latency_incident(world, "SeaMeWe-5")


@pytest.fixture()
def incident_catalog(world, registry, incident):
    return ToolCatalog(
        registry, MeasurementContext(world=world, incidents=[incident])
    )
