"""Scenario substrate: disaster catalog and incident construction."""

import pytest

from repro.synth.scenarios import (
    DisasterKind,
    cable_cut_event,
    default_disaster_catalog,
    make_latency_incident,
    LatencyIncident,
)


def test_catalog_has_both_kinds():
    kinds = {e.kind for e in default_disaster_catalog()}
    assert DisasterKind.EARTHQUAKE in kinds
    assert DisasterKind.HURRICANE in kinds


def test_catalog_severity_thresholds():
    for event in default_disaster_catalog():
        if event.kind is DisasterKind.EARTHQUAKE:
            assert event.is_severe == (event.magnitude >= 7.0)
        elif event.kind is DisasterKind.HURRICANE:
            assert event.is_severe == (event.magnitude >= 4.0)


def test_catalog_ids_unique():
    ids = [e.id for e in default_disaster_catalog()]
    assert len(ids) == len(set(ids))


def test_cable_cut_event_validates_name(world):
    event = cable_cut_event(world, "SeaMeWe-5")
    assert event.kind is DisasterKind.CABLE_CUT
    assert event.is_severe
    with pytest.raises(KeyError):
        cable_cut_event(world, "NoSuchCable")


def test_incident_three_days_ago(world):
    incident = make_latency_incident(world, "SeaMeWe-5", days_of_history=7,
                                     days_since_onset=3)
    assert incident.window_end == pytest.approx(7 * 86400.0)
    assert incident.onset == pytest.approx(4 * 86400.0)
    assert incident.window_start == 0.0


def test_incident_rejects_bad_windows(world):
    with pytest.raises(ValueError):
        make_latency_incident(world, "SeaMeWe-5", days_of_history=2,
                              days_since_onset=3)
    with pytest.raises(ValueError):
        LatencyIncident(cable_name="x", onset=10.0, window_start=20.0,
                        window_end=30.0)


def test_incident_unknown_cable(world):
    with pytest.raises(KeyError):
        make_latency_incident(world, "Imaginary-1")
