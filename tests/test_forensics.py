"""The closed forensic loop: trigger policy, episodes, cases, verdicts."""

import pytest

from repro.core.llm.knowledge import detect_intent
from repro.live import (
    ALERTS_TOPIC,
    EventBus,
    EpochShardPool,
    EpochState,
    ForensicTrigger,
    LiveConfig,
    SimulationClock,
    StandingQuery,
    StandingQueryManager,
    TriggerPolicy,
    WorldTimeline,
    compose_fingerprint,
    default_cable_cut_timeline,
    overlapping_catalog_timeline,
    run_live_replay,
)
from repro.live.forensics import (
    DEFAULT_TRIGGER_TEMPLATES,
    FORENSIC_PRIORITY,
    FORENSIC_STAGE,
    corridor_from_series,
    corridor_phrase,
)
from repro.serve import QueryBroker, ServeConfig


def _alert(kind="rtt_shift", series="DE->JP", epoch=1, magnitude=50.0):
    return {"detector": "t", "kind": kind, "series_key": series,
            "epoch": epoch, "ts": float(epoch) * 3600.0,
            "magnitude": magnitude, "detail": {}}


def _state(world, index, failed_links=frozenset(), failed_cables=(),
           fired=(), healed=()):
    failed_links = frozenset(failed_links)
    return EpochState(
        index=index,
        window_start=index * 3600.0,
        window_end=(index + 1) * 3600.0,
        fingerprint=compose_fingerprint(world.fingerprint(), failed_links),
        failed_link_ids=failed_links,
        failed_cable_ids=tuple(sorted(failed_cables)),
        active_event_ids=(),
        fired_event_ids=tuple(fired),
        healed_event_ids=tuple(healed),
        changed=True,
    )


def _cable_failure(world, cable_name):
    cable = world.cable_named(cable_name)
    links = frozenset(l.id for l in world.links_on_cable(cable.id))
    return cable.id, links


# -- policy ------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        TriggerPolicy(dedup_window_epochs=0)
    with pytest.raises(ValueError):
        TriggerPolicy(max_cases_per_epoch=0)
    with pytest.raises(ValueError):
        TriggerPolicy(max_total_cases=-1)
    with pytest.raises(ValueError):
        TriggerPolicy(max_queries_per_case=0)
    with pytest.raises(ValueError):
        TriggerPolicy(templates=())
    with pytest.raises(ValueError):
        TriggerPolicy(escalation_corridors=(("europe", "atlantis"),))


def test_policy_severity_thresholds_per_kind():
    policy = TriggerPolicy(min_magnitude=(("bgp_burst", 5.0),),
                           default_min_magnitude=1.0)
    assert policy.eligible(_alert(kind="bgp_burst", magnitude=6.0))
    assert not policy.eligible(_alert(kind="bgp_burst", magnitude=4.0))
    assert policy.eligible(_alert(kind="rtt_shift", magnitude=1.5))
    assert not policy.eligible(_alert(kind="rtt_shift", magnitude=0.5))
    # A kind without a template never triggers, whatever its magnitude.
    assert not policy.eligible(_alert(kind="unknown_kind", magnitude=99.0))


def test_policy_queries_route_to_forensic_intent():
    policy = TriggerPolicy()
    for kind in DEFAULT_TRIGGER_TEMPLATES:
        query = policy.query_for(_alert(kind=kind), ("europe", "asia"))
        assert detect_intent(query) == "latency_forensics"
        assert "DE->JP" in query and "epoch 1" in query


def test_policy_corridor_plan_prefers_alert_corridor_and_dedups():
    policy = TriggerPolicy(max_queries_per_case=3)
    plan = policy.corridor_plan(_alert(series="JP->AE"))
    assert plan[0] == ("asia", "middle_east")
    assert plan == [("asia", "middle_east"), ("europe", "asia"),
                    ("europe", "north_america")]
    # An alert already on an escalation corridor does not repeat it.
    plan = policy.corridor_plan(_alert(series="DE->JP"))
    assert plan == [("europe", "asia"), ("europe", "north_america"),
                    ("asia", "middle_east")]
    # Non-geographic series fall straight into the playbook.
    plan = policy.corridor_plan(_alert(kind="bgp_burst", series="rrc-sim"))
    assert plan == [("europe", "asia"), ("europe", "north_america"),
                    ("asia", "middle_east")]


def test_corridor_from_series():
    assert corridor_from_series("DE->JP") == ("europe", "asia")
    assert corridor_from_series("US->BR") == ("north_america", "south_america")
    assert corridor_from_series("rrc-sim") is None
    assert corridor_from_series("XX->YY") is None


def test_corridor_phrase_words_are_extractable():
    from repro.core.llm.knowledge import extract_entities

    phrase = corridor_phrase(("north_america", "asia"))
    entities = extract_entities(f"latency from {phrase}", {})
    assert set(entities["regions"]) == {"north_america", "asia"}


def test_every_region_phrase_grounds_its_own_region():
    """Each region's phrase must extract back to exactly that region —
    otherwise an escalation corridor would silently probe the wrong one."""
    from repro.core.llm.knowledge import extract_entities
    from repro.live.forensics import REGION_PHRASES

    for region, phrase in REGION_PHRASES.items():
        entities = extract_entities(f"probes in {phrase} saw latency", {})
        assert entities.get("regions") == [region], (region, phrase, entities)


# -- timeline ground truth ---------------------------------------------------


def test_timeline_per_event_ground_truth(world):
    events = overlapping_catalog_timeline(world, count=3)
    timeline = WorldTimeline(world, events, clock=SimulationClock())
    truth = timeline.ground_truth()
    assert len(truth) == 3
    for item in events:
        row = truth[item.event.id]
        assert row["epoch"] == item.start_epoch
        assert row["cables"] == timeline.event_cables(item.event.id)
        assert timeline.event_links(item.event.id)
        assert row["fingerprint"] == timeline.event_fingerprint(item.event.id)
    # A solo event's fingerprint equals the epoch fingerprint of a world
    # where only that event is active — shard-key sharing depends on it.
    first = events[0]
    state = timeline.state_at(first.start_epoch, 0.0, 3600.0)
    assert state.fingerprint == timeline.event_fingerprint(first.event.id)


def test_overlapping_timeline_is_disjoint_and_overlaps(world):
    events = overlapping_catalog_timeline(world, count=3, first_epoch=4,
                                          stagger_epochs=2, duration_epochs=8)
    timeline = WorldTimeline(world, events, clock=SimulationClock())
    seen: set[str] = set()
    for item in events:
        cables = set(timeline.event_cables(item.event.id))
        assert cables, "every scheduled event must break cables"
        assert not cables & seen, "event cable footprints must be disjoint"
        seen |= cables
    # All three are simultaneously active somewhere in the last window.
    last_start = events[-1].start_epoch
    assert all(e.active_at(last_start) for e in events)
    starts = [e.start_epoch for e in events]
    assert len(set(starts)) == len(starts), "fires must be staggered"


def test_overlapping_timeline_validation(world):
    with pytest.raises(ValueError):
        overlapping_catalog_timeline(world, count=0)
    with pytest.raises(ValueError):
        overlapping_catalog_timeline(world, count=2, stagger_epochs=0)
    with pytest.raises(ValueError):
        overlapping_catalog_timeline(world, count=3, stagger_epochs=4,
                                     duration_epochs=8)
    with pytest.raises(ValueError):
        overlapping_catalog_timeline(world, count=50)


# -- epoch shard pool --------------------------------------------------------


def test_pool_base_key_for_empty_cables(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    pool = EpochShardPool(broker, max_epoch_shards=2)
    assert pool.materialize("default", "fp", ()) == "default"
    assert len(pool) == 0
    broker.shutdown()


def test_pool_validation_and_stats(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    with pytest.raises(ValueError):
        EpochShardPool(broker, max_epoch_shards=0)
    pool = EpochShardPool(broker, max_epoch_shards=3)
    cable = list(world.cables)[0]
    key = pool.materialize("default", "fp-x", (cable,))
    pool.pin(key)
    pool.pin(key)
    assert pool.stats() == {"epoch_shards": 1, "max_epoch_shards": 3,
                            "shards_evicted": 0, "pinned": 1}
    pool.unpin(key)
    pool.unpin(key)
    pool.unpin(key)  # over-unpin is a no-op, never negative
    assert pool.stats()["pinned"] == 0
    # Unpinned base keys are ignored entirely.
    pool.pin("default")
    assert pool.stats()["pinned"] == 0
    broker.shutdown()


def test_pool_pins_block_eviction(world):
    cables = list(world.cables)[:3]
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    pool = EpochShardPool(broker, max_epoch_shards=2)
    keys = []
    for i, cable in enumerate(cables[:2]):
        keys.append(pool.materialize("default", f"fp-{i}", (cable,)))
    pool.pin(keys[0])
    pool.materialize("default", "fp-2", (cables[2],))
    # keys[0] is pinned, so the LRU victim was keys[1].
    assert keys[0] in broker.world_keys()
    assert keys[1] not in broker.world_keys()
    assert pool.shards_evicted == 1
    pool.unpin(keys[0])
    pool.materialize("default", "fp-3", (cables[1],))
    assert keys[0] not in broker.world_keys()
    assert pool.stats()["shards_evicted"] == 2
    broker.shutdown()


def test_pool_shared_between_standing_and_forensics(world):
    """The standing plane and the trigger reuse one shard for the same
    configuration fingerprint instead of materializing twice."""
    cable_id, links = _cable_failure(world, "MedLoop")
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        pool = EpochShardPool(broker, max_epoch_shards=4)
        manager = StandingQueryManager(broker, pool=pool)
        manager.register(StandingQuery(name="watch", query=(
            "Identify the impact at a country level due to MedLoop cable failure"
        )))
        bus = EventBus()
        trigger = ForensicTrigger(bus, broker, pool=pool)
        state = _state(world, 1, failed_links=links, failed_cables=(cable_id,))
        bus.publish(ALERTS_TOPIC, _alert(epoch=1))
        manager.on_epoch(state)
        trigger.on_epoch(state)
        # Same fingerprint -> same shard key -> one materialized world.
        epoch_keys = [k for k in broker.world_keys() if "@" in k]
        assert epoch_keys == [f"default@{state.fingerprint}"]
        assert len(pool) == 1
        manager.collect(timeout=240)
        trigger.collect(timeout=240)


# -- trigger unit behaviour --------------------------------------------------


def test_trigger_budget_suppression(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    bus = EventBus()
    trigger = ForensicTrigger(bus, broker,
                              policy=TriggerPolicy(max_total_cases=0))
    cable_id, links = _cable_failure(world, "MedLoop")
    bus.publish(ALERTS_TOPIC, _alert(epoch=1))
    opened = trigger.on_epoch(
        _state(world, 1, failed_links=links, failed_cables=(cable_id,))
    )
    assert opened == []
    stats = trigger.stats()
    assert stats["suppressed_budget"] == 1
    assert stats["queries_submitted"] == 0
    broker.shutdown()


def test_trigger_threshold_suppression_and_unattributed(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    bus = EventBus()
    trigger = ForensicTrigger(
        bus, broker, policy=TriggerPolicy(default_min_magnitude=10.0)
    )
    # Below-threshold alert during an episode: suppressed.
    cable_id, links = _cable_failure(world, "MedLoop")
    bus.publish(ALERTS_TOPIC, _alert(epoch=1, magnitude=5.0))
    trigger.on_epoch(_state(world, 1, failed_links=links,
                            failed_cables=(cable_id,)))
    # Loud alert with no episode anywhere near it: unattributed.
    bus.publish(ALERTS_TOPIC, _alert(epoch=9, magnitude=50.0))
    trigger.on_epoch(_state(world, 9, failed_links=links,
                            failed_cables=(cable_id,)))
    stats = trigger.stats()
    assert stats["suppressed_threshold"] == 1
    assert stats["unattributed"] == 1
    assert stats["cases_opened"] == 0
    broker.shutdown()


def test_trigger_rate_limit_defers_second_episode(world):
    """Two events firing the same epoch are two episodes; with a rate
    limit of 1 the second alert is suppressed and its episode is cased by
    the next epoch's alerts instead."""
    from repro.live import TimelineEvent
    from repro.synth.scenarios import cable_cut_event

    events = [
        TimelineEvent(event=cable_cut_event(world, "MedLoop"),
                      start_epoch=1, duration_epochs=6),
        TimelineEvent(event=cable_cut_event(world, "SeaMeWe-5"),
                      start_epoch=1, duration_epochs=6),
    ]
    timeline = WorldTimeline(world, events, clock=SimulationClock())
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    bus = EventBus()
    policy = TriggerPolicy(max_cases_per_epoch=1)
    trigger = ForensicTrigger(bus, broker, policy=policy, timeline=timeline)
    # Seed the cache so case opening never needs a started broker: the
    # opener alert resolves each episode on its first corridor.
    seeds = [("DE->JP", 1, "cut-cable-medloop"),
             ("DE->SG", 2, "cut-cable-seamewe-5")]
    for series, epoch, event_id in seeds:
        truth = timeline.ground_truth()[event_id]
        corridor = policy.corridor_plan(_alert(series=series))[0]
        broker.cache.store(FORENSIC_STAGE, {
            "query": policy.query_for(_alert(series=series, epoch=epoch),
                                      corridor),
            "world_key": "default",
            "fingerprint": truth["fingerprint"],
        }, {"state": "done",
            "final": {"identified_cable_id": truth["cables"][0]},
            "artifact_digest": "x" * 8})
    trigger.on_epoch(timeline.step())  # epoch 0: quiet
    state1 = timeline.step()           # epoch 1: both events fire
    assert len(state1.fired_event_ids) == 2
    bus.publish(ALERTS_TOPIC, _alert(epoch=1, series="DE->JP"))
    bus.publish(ALERTS_TOPIC, _alert(epoch=1, series="DE->SG", magnitude=40.0))
    opened1 = trigger.on_epoch(state1)
    assert len(opened1) == 1
    assert opened1[0].event_id == "cut-cable-medloop"
    assert trigger.stats()["suppressed_rate"] == 1
    bus.publish(ALERTS_TOPIC, _alert(epoch=2, series="DE->SG", magnitude=40.0))
    opened2 = trigger.on_epoch(timeline.step())
    assert len(opened2) == 1
    assert opened2[0].event_id == "cut-cable-seamewe-5"
    assert opened2[0].verdict == "confirmed"
    assert trigger.stats()["cases_opened"] == 2
    assert trigger.stats()["queries_submitted"] == 0
    broker.shutdown()


def test_trigger_merges_trailing_alerts_and_heals_quietly(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    cable_id, links = _cable_failure(world, "MedLoop")
    bus = EventBus()
    policy = TriggerPolicy()
    trigger = ForensicTrigger(bus, broker, policy=policy)
    fp = compose_fingerprint(world.fingerprint(), links)
    for corridor in policy.corridor_plan(_alert(series="DE->JP")):
        broker.cache.store(FORENSIC_STAGE, {
            "query": policy.query_for(_alert(series="DE->JP", epoch=1), corridor),
            "world_key": "default",
            "fingerprint": fp,
        }, {"state": "done", "final": {"identified_cable_id": cable_id},
            "artifact_digest": "y" * 8})
    bus.publish(ALERTS_TOPIC, _alert(epoch=1, series="DE->JP"))
    opened = trigger.on_epoch(
        _state(world, 1, failed_links=links, failed_cables=(cable_id,)))
    assert len(opened) == 1
    case = opened[0]
    assert case.from_cache and case.verdict == "confirmed"
    # Trailing alerts inside the window merge; none opens a second case.
    bus.publish(ALERTS_TOPIC, _alert(epoch=2, series="FR->SG"))
    bus.publish(ALERTS_TOPIC, _alert(epoch=3, kind="bgp_burst",
                                     series="rrc-sim", magnitude=9.0))
    trigger.on_epoch(_state(world, 2, failed_links=links,
                            failed_cables=(cable_id,)))
    trigger.on_epoch(_state(world, 3, failed_links=links,
                            failed_cables=(cable_id,)))
    assert case.alerts_merged == 2
    # The heal shrinks the failure set: no episode, no case.
    trigger.on_epoch(_state(world, 4))
    stats = trigger.stats()
    assert stats["cases_opened"] == 1
    assert stats["episodes_opened"] == 1
    broker.shutdown()


def test_trigger_case_closes_loop_end_to_end(world):
    """One real pipeline run: alert → submit → verdict names the cable."""
    cable_id, links = _cable_failure(world, "MedLoop")
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        bus = EventBus()
        trigger = ForensicTrigger(bus, broker)
        trigger.on_epoch(_state(world, 0))
        bus.publish(ALERTS_TOPIC, _alert(epoch=1, series="DE->JP"))
        opened = trigger.on_epoch(
            _state(world, 1, failed_links=links, failed_cables=(cable_id,)))
        assert len(opened) == 1
        case = opened[0]
        assert case.ticket is not None
        assert broker.job(case.ticket).priority == FORENSIC_PRIORITY
        joined = trigger.collect(timeout=240)
        assert joined == [case]
        assert case.state == "done"
        assert case.verdict == "confirmed"
        assert case.identified_cable == cable_id
        assert case.artifact_digest and len(case.artifact_digest) == 64
        assert case.verdict_latency_s > 0
        assert broker.stats()["submitted_by_priority"][FORENSIC_PRIORITY] >= 1
        # The verdict was cached: the same alert resolves without submitting.
        bus2 = EventBus()
        trigger2 = ForensicTrigger(bus2, broker)
        trigger2.on_epoch(_state(world, 0))
        bus2.publish(ALERTS_TOPIC, _alert(epoch=1, series="DE->JP"))
        warm = trigger2.on_epoch(
            _state(world, 1, failed_links=links, failed_cables=(cable_id,)))
        assert warm[0].from_cache
        assert warm[0].verdict == "confirmed"
        assert trigger2.stats()["queries_submitted"] == 0


def test_trigger_escalates_corridors_until_identified(world):
    """A non-geographic opener walks the corridor playbook: the Caribbean
    cables are invisible from europe→asia, so the case escalates."""
    cable_id, links = _cable_failure(world, "AmericasCrossing")
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        bus = EventBus()
        trigger = ForensicTrigger(bus, broker)
        trigger.on_epoch(_state(world, 0))
        bus.publish(ALERTS_TOPIC, _alert(kind="bgp_burst", series="rrc-sim",
                                         epoch=1, magnitude=9.0))
        opened = trigger.on_epoch(
            _state(world, 1, failed_links=links, failed_cables=(cable_id,)))
        case = opened[0]
        trigger.collect(timeout=480)
        assert case.verdict == "confirmed"
        assert case.identified_cable == cable_id
        assert case.queries_run == 2
        assert case.corridors_tried == ["europe->asia", "europe->north_america"]
        assert trigger.stats()["escalations"] == 1


# -- driver integration ------------------------------------------------------


def test_live_replay_forensics_single_incident(world):
    config = LiveConfig(epochs=10, workers=2, forensics=True)
    report = run_live_replay(world=world, config=config)
    assert len(report.forensic_cases) == 1
    assert report.completed_cases == 1
    case = report.forensic_cases[0]
    assert case["state"] == "done"
    assert case["verdict"] == "confirmed"
    assert report.forensic_stats["cases_opened"] == 1
    assert any(row["cases_opened"] for row in report.epoch_log)
    payload = report.to_dict()
    assert payload["forensic_cases"] == report.forensic_cases
    assert payload["forensic_stats"] == report.forensic_stats


def test_live_replay_forensics_disabled_is_empty(world):
    config = LiveConfig(epochs=6, workers=2)
    report = run_live_replay(world=world, config=config)
    assert report.forensic_cases == []
    assert report.forensic_stats == {}


def test_live_replay_multi_event_one_case_per_incident(world):
    """Two overlapping disasters: each yields exactly one completed case
    attributed to the right ground-truth event."""
    events = overlapping_catalog_timeline(world, count=2)
    config = LiveConfig(epochs=16, workers=2, forensics=True)
    report = run_live_replay(world=world, timeline_events=events, config=config)
    assert len(report.forensic_cases) == len(report.incident_epochs) == 2
    assert report.completed_cases == 2
    attributed = {c["event_id"] for c in report.forensic_cases}
    assert attributed == set(report.incident_epochs)
    for case in report.forensic_cases:
        assert case["expected_cables"]
        assert case["alert_latency_epochs"] >= 0


# -- CLI ---------------------------------------------------------------------


def test_live_cli_forensics_smoke(capsys):
    from repro.cli import main

    assert main(["--live", "--forensics", "--epochs", "10"]) == 0
    out = capsys.readouterr().out
    assert "forensic:" in out
    assert "trigger:" in out
    assert "confirmed" in out


def test_live_cli_rejects_negative_concurrent_events(capsys):
    from repro.cli import main

    assert main(["--live", "--concurrent-events", "-1"]) == 2
    assert "concurrent-events" in capsys.readouterr().err


def test_live_cli_rejects_replay_too_short_for_events(capsys):
    """A replay ending before the last scheduled disaster fires must fail
    loudly up front, not exit 1 after an undetectable incident."""
    from repro.cli import main

    assert main(["--live", "--concurrent-events", "3", "--epochs", "6"]) == 2
    err = capsys.readouterr().err
    assert "epoch 8" in err and "at least 9" in err


def test_manager_rejects_both_pool_and_max_epoch_shards(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    pool = EpochShardPool(broker, max_epoch_shards=4)
    with pytest.raises(ValueError):
        StandingQueryManager(broker, max_epoch_shards=2, pool=pool)
    # A shared pool carries the bound; the manager reports the pool's.
    manager = StandingQueryManager(broker, pool=pool)
    assert manager.stats()["max_epoch_shards"] == 4
    broker.shutdown()
