"""Analysis layer: statistics, change points, correlation, scoring, evidence."""

import pytest

from repro.analysis.changepoint import binary_segmentation, cusum_change_point, shift_magnitude
from repro.analysis.correlate import count_in_window, onset_agreement, temporal_correlation
from repro.analysis.evidence import EvidenceItem, synthesize_evidence
from repro.analysis.scoring import rank_suspects, score_gap
from repro.analysis.stats import mad, mean, median, percentile, robust_zscores, stdev, summarize


# -- stats -----------------------------------------------------------------------

def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_mad_zero_for_constant():
    assert mad([5.0] * 10) == 0.0


def test_robust_zscores_flag_outlier():
    values = [10.0] * 20 + [100.0]
    scores = robust_zscores(values)
    assert scores[-1] > 5
    assert abs(scores[0]) < 1


def test_robust_zscores_constant_series():
    scores = robust_zscores([7.0] * 5)
    assert scores == [0.0] * 5


def test_percentile_bounds():
    values = list(map(float, range(1, 101)))
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 100.0
    assert percentile(values, 50) == 50.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_summarize_fields():
    out = summarize([1.0, 2.0, 3.0])
    assert out["count"] == 3
    assert out["mean"] == 2.0
    assert summarize([]) == {"count": 0}


def test_mean_stdev():
    assert mean([2.0, 4.0]) == 3.0
    assert stdev([2.0, 2.0]) == 0.0


# -- change points -----------------------------------------------------------------

def test_cusum_location_and_magnitude():
    values = [10.0] * 15 + [20.0] * 15
    idx = cusum_change_point(values)
    assert idx is not None and 13 <= idx <= 17
    assert shift_magnitude(values, idx) == pytest.approx(10.0, abs=1.5)


def test_cusum_too_short():
    assert cusum_change_point([1.0, 2.0, 3.0]) is None


def test_binary_segmentation_two_shifts():
    values = [10.0] * 20 + [30.0] * 20 + [5.0] * 20
    points = binary_segmentation(values, min_shift=5.0)
    assert len(points) >= 2
    assert any(15 <= p <= 25 for p in points)
    assert any(35 <= p <= 45 for p in points)


def test_shift_magnitude_range_check():
    with pytest.raises(ValueError):
        shift_magnitude([1.0, 2.0], 0)


# -- correlation ---------------------------------------------------------------------

def test_onset_agreement_perfect_and_decay():
    perfect = onset_agreement(100.0, 100.0)
    assert perfect["agreement"] == 1.0
    half = onset_agreement(0.0, 3600.0, tolerance_s=7200.0)
    assert half["agreement"] == pytest.approx(0.5)
    assert onset_agreement(0.0, 10_000.0, tolerance_s=7200.0)["agrees"] is False


def test_onset_agreement_rejects_bad_tolerance():
    with pytest.raises(ValueError):
        onset_agreement(0.0, 1.0, tolerance_s=0.0)


def test_temporal_correlation_aligned_series():
    a = [0.0] * 10 + [10.0] * 10
    result = temporal_correlation(a, list(a))
    assert result["best_lag"] == 0
    assert result["correlation"] > 0.95


def test_temporal_correlation_lagged_series():
    base = [0.0] * 10 + [10.0] * 10 + [0.0] * 10
    lagged = base[3:] + [0.0] * 3
    result = temporal_correlation(lagged, base, max_lag=5)
    assert result["best_lag"] == 3


def test_count_in_window():
    assert count_in_window([1.0, 2.0, 3.0], 1.5, 3.5) == 2
    with pytest.raises(ValueError):
        count_in_window([], 5.0, 1.0)


# -- scoring --------------------------------------------------------------------------

def test_rank_suspects_ordering():
    rows = [
        {"id": "a", "votes": 10.0, "coverage": 1.0},
        {"id": "b", "votes": 5.0, "coverage": 0.5},
        {"id": "c", "votes": 0.0, "coverage": 0.0},
    ]
    ranked = rank_suspects(rows, weights={"votes": 0.7, "coverage": 0.3})
    assert [r["id"] for r in ranked] == ["a", "b", "c"]
    assert ranked[0]["score"] == pytest.approx(1.0)
    assert ranked[-1]["score"] == pytest.approx(0.0)


def test_rank_suspects_missing_feature_is_zero():
    ranked = rank_suspects([{"id": "a"}, {"id": "b", "votes": 3.0}],
                           weights={"votes": 1.0})
    assert ranked[0]["id"] == "b"


def test_rank_suspects_requires_weights():
    with pytest.raises(ValueError):
        rank_suspects([{"id": "a"}], weights={})


def test_score_gap():
    assert score_gap([]) == 0.0
    assert score_gap([{"score": 0.8}]) == 1.0
    gap = score_gap([{"score": 0.8}, {"score": 0.2}])
    assert gap == pytest.approx(0.75)


# -- evidence -----------------------------------------------------------------------------

def test_evidence_strength_bounds():
    with pytest.raises(ValueError):
        EvidenceItem(kind="x", description="d", strength=1.5, supports=True)


def test_synthesis_empty():
    out = synthesize_evidence([])
    assert out["verdict"] == "insufficient_evidence"
    assert out["confidence"] == 0.0


def test_synthesis_three_supporting_strands():
    items = [
        EvidenceItem("statistical", "latency shift", 0.9, True),
        EvidenceItem("infrastructure", "clear suspect", 0.8, True),
        EvidenceItem("routing", "correlated burst", 0.8, True),
    ]
    out = synthesize_evidence(items)
    assert out["verdict"] == "established"
    assert out["confidence"] > 0.8
    assert out["supporting"] == 3


def test_synthesis_contradiction_lowers_confidence():
    supporting = [EvidenceItem("statistical", "s", 0.9, True)]
    mixed = supporting + [EvidenceItem("routing", "no burst", 0.9, False)]
    assert (synthesize_evidence(mixed)["confidence"]
            < synthesize_evidence(supporting)["confidence"])


def test_synthesis_diversity_bonus():
    same_kind = [
        EvidenceItem("statistical", "a", 0.6, True),
        EvidenceItem("statistical", "b", 0.6, True),
    ]
    diverse = [
        EvidenceItem("statistical", "a", 0.6, True),
        EvidenceItem("routing", "b", 0.6, True),
    ]
    assert (synthesize_evidence(diverse)["confidence"]
            > synthesize_evidence(same_kind)["confidence"])
