"""BGP substrate: messages, RIB, collector, anomalies, API."""

import pytest

from repro.bgp.anomaly import detect_update_anomalies, update_rate_series
from repro.bgp.collector import BGPCollectorSim, CableIncident, CollectorConfig
from repro.bgp.messages import BGPUpdate, UpdateKind, path_edit_distance
from repro.bgp.rib import RoutingTable
from repro.bgp.api import (
    correlate_updates_with_window,
    detect_routing_anomalies,
    fetch_updates,
    summarize_path_changes,
    update_volume_series,
)

DAY = 86_400.0


# -- messages -------------------------------------------------------------------

def test_update_roundtrip():
    update = BGPUpdate(ts=10.0, collector="rrc-sim", peer_asn=1000,
                       kind=UpdateKind.ANNOUNCE, prefix="10.0.0.0/24",
                       as_path=(1000, 1007, 1042))
    assert BGPUpdate.from_dict(update.to_dict()) == update
    assert update.origin_asn == 1042


def test_withdraw_has_no_origin():
    update = BGPUpdate(ts=1.0, collector="c", peer_asn=1, kind=UpdateKind.WITHDRAW,
                       prefix="10.0.0.0/24")
    assert update.origin_asn is None


def test_path_edit_distance():
    assert path_edit_distance((1, 2, 3), (1, 2, 3)) == 0
    assert path_edit_distance((1, 2, 3), (1, 3)) == 1
    assert path_edit_distance((), (1, 2)) == 2
    assert path_edit_distance((1, 2), (3, 4)) == 2


# -- RIB -------------------------------------------------------------------------

def test_rib_apply_and_withdraw():
    table = RoutingTable(collector="c")
    table.apply(BGPUpdate(1.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7, 9)))
    assert table.best_route("10.0.0.0/24").as_path == (7, 9)
    table.apply(BGPUpdate(2.0, "c", 7, UpdateKind.WITHDRAW, "10.0.0.0/24"))
    assert table.best_route("10.0.0.0/24") is None


def test_rib_best_route_prefers_shorter_path():
    table = RoutingTable(collector="c")
    table.apply(BGPUpdate(1.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7, 8, 9)))
    table.apply(BGPUpdate(2.0, "c", 5, UpdateKind.ANNOUNCE, "10.0.0.0/24", (5, 9)))
    assert table.best_route("10.0.0.0/24").peer_asn == 5


def test_rib_rejects_wrong_collector_and_time_travel():
    table = RoutingTable(collector="c")
    with pytest.raises(ValueError):
        table.apply(BGPUpdate(1.0, "other", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7,)))
    table.apply(BGPUpdate(5.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7,)))
    with pytest.raises(ValueError):
        table.apply(BGPUpdate(4.0, "c", 7, UpdateKind.WITHDRAW, "10.0.0.0/24"))


def test_rib_diff_detects_changes():
    before = RoutingTable(collector="c")
    after = RoutingTable(collector="c")
    before.apply(BGPUpdate(1.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7, 9)))
    before.apply(BGPUpdate(1.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.1.0/24", (7, 8)))
    after.apply(BGPUpdate(9.0, "c", 7, UpdateKind.ANNOUNCE, "10.0.0.0/24", (7, 5, 9)))
    diff = before.diff(after)
    assert diff["lost_prefixes"] == ["10.0.1.0/24"]
    assert diff["changed_paths"][0]["length_delta"] == 1


# -- collector ---------------------------------------------------------------------

def test_collector_baseline_covers_reachable_prefixes(world):
    sim = BGPCollectorSim(world, CollectorConfig(peer_count=4))
    routes = sim.baseline_routes()
    assert routes
    for (peer, prefix), path in list(routes.items())[:50]:
        assert path[0] == peer


def test_collector_steady_state_rate(world):
    sim = BGPCollectorSim(world, CollectorConfig(churn_per_hour=12.0))
    updates = sim.generate_updates(0.0, DAY)
    # churn 12/h over 24h; flaps emit two messages, so within [288, 576].
    assert 200 <= len(updates) <= 700


def test_collector_incident_burst(world):
    sim = BGPCollectorSim(world)
    quiet = sim.generate_updates(0.0, 7 * DAY)
    noisy = sim.generate_updates(
        0.0, 7 * DAY, incidents=[CableIncident("SeaMeWe-5", onset=4 * DAY)]
    )
    assert len(noisy) > len(quiet) + 300
    burst = [u for u in noisy if 4 * DAY <= u.ts <= 4 * DAY + 600]
    background = [u for u in quiet if 4 * DAY <= u.ts <= 4 * DAY + 600]
    assert len(burst) > len(background) + 50


def test_collector_updates_sorted(world):
    sim = BGPCollectorSim(world)
    updates = sim.generate_updates(0.0, DAY,
                                   incidents=[CableIncident("AAE-1", onset=DAY / 2)])
    timestamps = [u.ts for u in updates]
    assert timestamps == sorted(timestamps)


def test_collector_rejects_bad_window(world):
    sim = BGPCollectorSim(world)
    with pytest.raises(ValueError):
        sim.generate_updates(10.0, 5.0)


# -- anomaly detection ---------------------------------------------------------------

def test_anomaly_detected_at_incident(world, incident):
    rows = fetch_updates(world, 0.0, 7 * DAY, incidents=[incident])
    anomalies = detect_routing_anomalies(rows, 0.0, 7 * DAY)
    assert anomalies
    top = anomalies[0]
    assert top["window_start"] <= incident.onset <= top["window_end"]
    assert top["zscore"] > 10


def test_no_anomaly_in_quiet_stream(world):
    rows = fetch_updates(world, 0.0, 7 * DAY)
    anomalies = detect_routing_anomalies(rows, 0.0, 7 * DAY)
    assert anomalies == [] or all(a["zscore"] < 10 for a in anomalies)


def test_rate_series_covers_window():
    updates = [BGPUpdate(float(i), "c", 1, UpdateKind.ANNOUNCE, "10.0.0.0/24", (1,))
               for i in range(100)]
    bins = update_rate_series(updates, 0.0, 100.0, bin_seconds=10.0)
    assert len(bins) == 10
    assert sum(b["count"] for b in bins) == 100


def test_rate_series_rejects_bad_bin():
    with pytest.raises(ValueError):
        update_rate_series([], 0.0, 10.0, bin_seconds=0)


# -- API -------------------------------------------------------------------------------

def test_summarize_path_changes_on_incident(world, incident):
    rows = fetch_updates(world, 0.0, 7 * DAY, incidents=[incident])
    summary = summarize_path_changes(rows)
    assert summary["lost_count"] > 0 or summary["changed_count"] > 0


def test_correlation_strong_at_onset(world, incident):
    rows = fetch_updates(world, 0.0, 7 * DAY, incidents=[incident])
    correlation = correlate_updates_with_window(rows, incident.onset,
                                                incident.onset + 3600)
    assert correlation["correlated"]
    assert correlation["rate_ratio"] > 2


def test_correlation_empty_stream():
    correlation = correlate_updates_with_window([], 0.0, 10.0)
    assert not correlation["correlated"]


def test_update_volume_series_api(world, incident):
    rows = fetch_updates(world, 0.0, 7 * DAY, incidents=[incident])
    bins = update_volume_series(rows, 0.0, 7 * DAY)
    assert len(bins) == 168
    assert sum(b["count"] for b in bins) == len(rows)


# -- epoch-delta updates (live feed support) ------------------------------------


def test_routes_under_failure_differs_and_is_memoized(world):
    sim = BGPCollectorSim(world)
    cable = world.cable_named("AAE-1")
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))
    baseline = sim.routes_under(frozenset())
    degraded = sim.routes_under(dead)
    assert baseline and degraded != baseline
    assert sim.routes_under(dead) is degraded  # memoized per failure set
    assert sim.baseline_routes() == baseline
    assert sim.baseline_routes() is not baseline  # callers get a copy


def test_delta_updates_symmetric_cut_and_heal(world):
    sim = BGPCollectorSim(world)
    cable = world.cable_named("AAE-1")
    dead = frozenset(l.id for l in world.links_on_cable(cable.id))
    cut = sim.delta_updates(1_000.0, frozenset(), dead)
    heal = sim.delta_updates(9_000.0, dead, frozenset())
    assert len(cut) > 100 and len(heal) > 100
    assert any(u.kind is UpdateKind.WITHDRAW for u in cut)
    # Healing re-announces: every update carries a route again.
    announce_ratio = sum(1 for u in heal if u.kind is UpdateKind.ANNOUNCE) / len(heal)
    assert announce_ratio > 0.9
    assert sim.delta_updates(0.0, dead, dead) == []  # no change, no burst
    # Deterministic for a given (ts, before, after).
    assert cut == sim.delta_updates(1_000.0, frozenset(), dead)
    # Timestamps respect the window horizon.
    capped = sim.delta_updates(1_000.0, frozenset(), dead, window_end=1_050.0)
    assert max(u.ts for u in capped) <= 1_050.0


def test_churn_updates_windowed_and_seeded(world):
    sim = BGPCollectorSim(world)
    first = sim.churn_updates(0.0, 3600.0)
    second = sim.churn_updates(3600.0, 7200.0)
    assert first == sim.churn_updates(0.0, 3600.0)  # reproducible
    assert first != second  # independent draws per window
    assert all(0.0 <= u.ts <= 3600.0 for u in first)
    assert all(3600.0 <= u.ts <= 7200.0 for u in second)
    with pytest.raises(ValueError):
        sim.churn_updates(10.0, 10.0)
