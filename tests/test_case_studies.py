"""Integration: the four paper case studies, generated vs expert (§4).

These are the headline reproduction tests — every check in every case-study
report corresponds to a claim in the paper's evaluation.
"""

import pytest

from repro.evalharness.casestudies import run_case1, run_case2, run_case3, run_case4


@pytest.fixture(scope="module")
def case1(world):
    return run_case1(world)


@pytest.fixture(scope="module")
def case2(world):
    return run_case2(world)


@pytest.fixture(scope="module")
def case3(world):
    return run_case3(world)


@pytest.fixture(scope="module")
def case4(world):
    return run_case4(world)


# -- Case study 1: expert replication -------------------------------------------

def test_case1_all_checks_pass(case1):
    assert case1.all_passed, case1.checks


def test_case1_measurement_logic_equivalent(case1):
    assert case1.metrics["counts_spearman"] == pytest.approx(1.0)
    assert case1.metrics["affected_set_jaccard"] >= 0.8


def test_case1_restricted_to_nautilus(case1):
    assert case1.metrics["frameworks_used"] == ["nautilus"]


def test_case1_loc_reported(case1):
    assert 75 <= case1.metrics["generated_loc"] <= 750


def test_case1_derived_pipeline_present(case1):
    targets = {s.target for s in case1.pipeline.design.chosen.steps}
    assert "aggregate_impact_by_country" in targets
    assert not any(t.startswith("xaminer.") for t in targets)


# -- Case study 2: skilled restraint ----------------------------------------------

def test_case2_all_checks_pass(case2):
    assert case2.all_passed, case2.checks


def test_case2_single_analysis_function(case2):
    assert case2.metrics["analysis_functions_used"] == ["xaminer.process_event"]
    assert case2.metrics["frameworks_used"] == ["xaminer"]


def test_case2_probability_from_query(case2):
    assert case2.metrics["failure_probability"] == pytest.approx(0.1)


def test_case2_identical_failure_sets(case2):
    assert case2.metrics["same_failed_cables"] is True
    assert case2.metrics["ranking_spearman"] in (None, pytest.approx(1.0))


def test_case2_processes_every_severe_event(case2):
    assert (case2.metrics["events_processed_generated"]
            == case2.metrics["events_processed_expert"] == 7)


# -- Case study 3: multi-framework orchestration -------------------------------------

def test_case3_all_checks_pass(case3):
    assert case3.all_passed, case3.checks


def test_case3_four_frameworks(case3):
    assert case3.metrics["framework_count"] == 4
    assert set(case3.metrics["frameworks_used"]) == {
        "nautilus", "xaminer", "bgp", "traceroute"
    }


def test_case3_timeline_cross_layer(case3):
    assert set(case3.metrics["timeline_layers"]) == {"as", "cable", "ip"}


def test_case3_corridor_agreement(case3):
    assert (case3.metrics["corridor_cables_generated"]
            == case3.metrics["corridor_cables_expert"])
    assert "SeaMeWe-5" in case3.metrics["corridor_cables_generated"]


def test_case3_cascade_progressed(case3):
    assert case3.metrics["cascade_rounds_generated"] >= 1
    assert case3.metrics["cascade_rounds_expert"] >= 1


# -- Case study 4: forensics -----------------------------------------------------------

def test_case4_all_checks_pass(case4):
    assert case4.all_passed, case4.checks


def test_case4_cable_identified_by_both(case4):
    assert case4.metrics["generated_identified"] == "SeaMeWe-5"
    assert case4.metrics["expert_identified"] == "SeaMeWe-5"


def test_case4_onset_recovered(case4):
    assert case4.metrics["onset_error_hours"] <= 6.0


def test_case4_three_strands(case4):
    assert case4.metrics["evidence_strands"] == [
        "statistical", "infrastructure", "routing"
    ]


def test_case4_confidence_comparable_to_expert(case4):
    assert abs(case4.metrics["generated_confidence"]
               - case4.metrics["expert_confidence"]) < 0.3


# -- Cross-case properties ----------------------------------------------------------------

def test_loc_ordering_matches_paper(case1, case2, case3, case4):
    """The paper's sizes order CS4 > CS3 > CS2 ≈ CS1; complexity ordering
    must hold for the generated code too (forensics > cascade > the rest)."""
    loc = {1: case1.metrics["generated_loc"], 2: case2.metrics["generated_loc"],
           3: case3.metrics["generated_loc"], 4: case4.metrics["generated_loc"]}
    assert loc[4] > loc[3] > max(loc[1], loc[2]) * 0.6
    assert loc[4] > loc[1]
    assert loc[4] > loc[2]


def test_functional_overlap_high_everywhere(case1, case2, case3, case4):
    for report in (case1, case2, case3, case4):
        assert report.metrics["functional_overlap_jaccard"] >= 0.6, report.case
