"""Workflow DAG: validation, ordering, signatures, rendering."""

import pytest

from repro.core.artifacts import CandidateWorkflow, StepType, WorkflowStep
from repro.core.workflow import (
    WorkflowValidationError,
    functional_signature,
    parse_binding,
    stage_kinds,
    to_mermaid,
    topological_order,
    validate_workflow,
)


def _step(sid, target, inputs=None, step_type=StepType.TRANSFORM, foreach=""):
    return WorkflowStep(id=sid, step_type=step_type, target=target,
                        inputs=inputs or {}, foreach=foreach)


def _workflow(*steps):
    return CandidateWorkflow(steps=list(steps))


def test_parse_binding_kinds():
    assert parse_binding("workflow:x") == ("workflow", "x")
    assert parse_binding("step:s1.field") == ("step", "s1.field")
    assert parse_binding("const:3") == ("const", "3")
    with pytest.raises(WorkflowValidationError):
        parse_binding("nocolon")
    with pytest.raises(WorkflowValidationError):
        parse_binding("magic:x")


def test_validate_accepts_well_formed():
    wf = _workflow(
        _step("s1", "build_report", {"title": 'const:"t"', "ranking": "workflow:r",
                                     "dependencies": "workflow:r"}),
        _step("s2", "combine_reports", {"reports_a": "step:s1"}),
    )
    validate_workflow(wf, {"r": "input"})


def test_validate_rejects_duplicate_ids():
    wf = _workflow(_step("s1", "build_report"), _step("s1", "combine_reports"))
    with pytest.raises(WorkflowValidationError, match="duplicate"):
        validate_workflow(wf, {})


def test_validate_rejects_unknown_workflow_input():
    wf = _workflow(_step("s1", "build_report", {"x": "workflow:missing"}))
    with pytest.raises(WorkflowValidationError, match="undefined workflow input"):
        validate_workflow(wf, {})


def test_validate_rejects_unknown_step_reference():
    wf = _workflow(_step("s1", "build_report", {"x": "step:ghost"}))
    with pytest.raises(WorkflowValidationError, match="unknown step"):
        validate_workflow(wf, {})


def test_validate_rejects_self_reference():
    wf = _workflow(_step("s1", "build_report", {"x": "step:s1"}))
    with pytest.raises(WorkflowValidationError, match="itself"):
        validate_workflow(wf, {})


def test_validate_rejects_bad_const():
    wf = _workflow(_step("s1", "build_report", {"x": "const:{not json"}))
    with pytest.raises(WorkflowValidationError, match="not JSON"):
        validate_workflow(wf, {})


def test_validate_rejects_unknown_registry_target():
    wf = _workflow(_step("s1", "ghost.fn", step_type=StepType.REGISTRY))
    with pytest.raises(WorkflowValidationError, match="unknown registry entry"):
        validate_workflow(wf, {}, registry_names={"real.fn"})


def test_validate_rejects_unknown_transform():
    wf = _workflow(_step("s1", "ghost_transform"))
    with pytest.raises(WorkflowValidationError, match="unknown transform"):
        validate_workflow(wf, {}, transform_names={"build_report"})


def test_validate_item_binding_requires_foreach():
    bad = _workflow(_step("s1", "build_report", {"x": "item"}))
    with pytest.raises(WorkflowValidationError, match="without foreach"):
        validate_workflow(bad, {})
    ok = _workflow(
        _step("s0", "combine_reports", {}),
        _step("s1", "build_report", {"x": "item"}, foreach="step:s0"),
    )
    validate_workflow(ok, {})


def test_validate_foreach_must_bind_step():
    wf = _workflow(_step("s1", "build_report", {}, foreach="workflow:items"))
    with pytest.raises(WorkflowValidationError, match="foreach"):
        validate_workflow(wf, {"items": "list"})


def test_topological_order_respects_dependencies():
    wf = _workflow(
        _step("s3", "build_report", {"x": "step:s2"}),
        _step("s1", "combine_reports", {}),
        _step("s2", "combine_reports", {"a": "step:s1"}),
    )
    order = [s.id for s in topological_order(wf)]
    assert order.index("s1") < order.index("s2") < order.index("s3")


def test_topological_order_detects_cycle():
    wf = _workflow(
        _step("s1", "combine_reports", {"a": "step:s2"}),
        _step("s2", "combine_reports", {"a": "step:s1"}),
    )
    with pytest.raises(WorkflowValidationError, match="cycle"):
        topological_order(wf)


def test_functional_signature_order_insensitive():
    wf_a = _workflow(_step("s1", "build_report"), _step("s2", "combine_reports"))
    wf_b = _workflow(_step("x", "combine_reports"), _step("y", "build_report"))
    assert functional_signature(wf_a) == functional_signature(wf_b)


def test_stage_kinds_mapping():
    wf = _workflow(_step("s1", "build_report"), _step("s2", "unknown_thing"))
    kinds = stage_kinds(wf, {"build_report": "report"})
    assert kinds == {"report", "unknown_thing"}


def test_mermaid_rendering():
    wf = _workflow(
        _step("s1", "nautilus.list_cables", step_type=StepType.REGISTRY),
        _step("s2", "build_report", {"x": "step:s1"}),
    )
    text = to_mermaid(wf)
    assert "flowchart TD" in text
    assert "s1 --> s2" in text
