"""Serve subsystem: broker, scheduler, workers, cache, campaigns, provenance."""

import threading
import time

import pytest

from repro.serve import (
    ArtifactCache,
    BrokerError,
    CampaignJob,
    CampaignSpec,
    JobState,
    PriorityScheduler,
    QueryBroker,
    SchedulerClosed,
    ServeConfig,
    WorkerPool,
    content_key,
    run_campaign,
)
from repro.synth.world import WorldConfig, build_world

CS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
CS1_FALCON = "Identify the impact at a country level due to FALCON cable failure"


@pytest.fixture()
def broker(world):
    broker = QueryBroker(world, config=ServeConfig(workers=2)).start()
    yield broker
    broker.shutdown()


# -- artifact cache ---------------------------------------------------------


def test_content_key_is_stable_and_order_insensitive():
    a = content_key("analysis", {"x": 1, "y": [2, 3]})
    b = content_key("analysis", {"y": [2, 3], "x": 1})
    assert a == b
    assert content_key("design", {"x": 1, "y": [2, 3]}) != a
    assert content_key("analysis", {"x": 2, "y": [2, 3]}) != a


def test_cache_fetch_store_roundtrip():
    cache = ArtifactCache()
    assert cache.fetch("analysis", {"q": "cs1"}) is None
    cache.store("analysis", {"q": "cs1"}, {"intent": "impact"})
    assert cache.fetch("analysis", {"q": "cs1"}) == {"intent": "impact"}
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["per_stage"]["analysis"] == {"hits": 1, "misses": 1}


def test_cache_returns_fresh_copies():
    cache = ArtifactCache()
    cache.store("analysis", {"q": 1}, {"entities": {"cable": "x"}})
    first = cache.fetch("analysis", {"q": 1})
    first["entities"]["cable"] = "mutated"
    assert cache.fetch("analysis", {"q": 1})["entities"]["cable"] == "x"


def test_cache_lru_eviction():
    cache = ArtifactCache(max_entries=2)
    cache.store("s", {"k": 1}, {"v": 1})
    cache.store("s", {"k": 2}, {"v": 2})
    cache.fetch("s", {"k": 1})  # refresh 1 → 2 becomes the LRU victim
    cache.store("s", {"k": 3}, {"v": 3})
    assert cache.fetch("s", {"k": 2}) is None
    assert cache.fetch("s", {"k": 1}) == {"v": 1}
    assert cache.stats()["evictions"] == 1


def test_cache_reset_stats_keeps_entries():
    cache = ArtifactCache()
    cache.store("s", {"k": 1}, {"v": 1})
    cache.fetch("s", {"k": 1})
    cache.reset_stats()
    assert cache.stats()["hits"] == 0
    assert cache.fetch("s", {"k": 1}) == {"v": 1}


# -- scheduler --------------------------------------------------------------


def test_scheduler_fifo_within_priority_band():
    scheduler = PriorityScheduler()
    for item in ("a", "b", "c"):
        scheduler.push(item)
    assert [scheduler.pop() for _ in range(3)] == ["a", "b", "c"]


def test_scheduler_priority_beats_arrival_order():
    scheduler = PriorityScheduler()
    scheduler.push("low", priority=0)
    scheduler.push("high", priority=5)
    scheduler.push("mid", priority=1)
    assert [scheduler.pop() for _ in range(3)] == ["high", "mid", "low"]


def test_scheduler_close_rejects_push_but_drains():
    scheduler = PriorityScheduler()
    scheduler.push("queued")
    scheduler.close()
    with pytest.raises(SchedulerClosed):
        scheduler.push("late")
    assert scheduler.pop() == "queued"
    assert scheduler.pop() is None  # closed and drained


def test_scheduler_pop_timeout():
    scheduler = PriorityScheduler()
    started = time.perf_counter()
    assert scheduler.pop(timeout=0.02) is None
    assert time.perf_counter() - started < 1.0


def test_scheduler_per_shard_stats():
    scheduler = PriorityScheduler()
    scheduler.push("a", shard="w1")
    scheduler.push("b", shard="w1")
    scheduler.push("c", shard="w2")
    assert scheduler.stats()["per_shard_queued"] == {"w1": 2, "w2": 1}


def test_scheduler_priority_band_stats():
    scheduler = PriorityScheduler()
    scheduler.push("standing", priority=0)
    scheduler.push("forensic", priority=100)
    scheduler.push("campaign", priority=0)
    assert scheduler.stats()["pushed_by_priority"] == {0: 2, 100: 1}


def test_scheduler_counts_preemptions():
    """A pop that services a high band while lower-priority work waits is a
    preemption; FIFO pops within one band are not."""
    scheduler = PriorityScheduler()
    scheduler.push("low-1", priority=0)
    scheduler.push("low-2", priority=0)
    scheduler.push("urgent", priority=100)
    assert scheduler.pop() == "urgent"
    assert scheduler.stats()["preemptions"] == 1
    assert scheduler.pop() == "low-1"
    assert scheduler.pop() == "low-2"
    assert scheduler.stats()["preemptions"] == 1


def test_scheduler_pop_batch_counts_preemptions():
    scheduler = PriorityScheduler()
    scheduler.push("low", priority=0)
    scheduler.push("hi-1", priority=5)
    scheduler.push("hi-2", priority=5)
    assert scheduler.pop_batch(2) == ["hi-1", "hi-2"]
    assert scheduler.stats()["preemptions"] == 2


# -- worker pool ------------------------------------------------------------


def test_worker_pool_processes_all_items():
    scheduler = PriorityScheduler()
    seen = []
    lock = threading.Lock()

    def handler(item, worker):
        with lock:
            seen.append(item)

    pool = WorkerPool(scheduler, handler, num_workers=3).start()
    for i in range(20):
        scheduler.push(i)
    pool.shutdown(wait=True, drain=True)
    assert sorted(seen) == list(range(20))


def test_worker_pool_drain_false_abandons_queue():
    scheduler = PriorityScheduler()
    processed = []
    release = threading.Event()

    def handler(item, worker):
        release.wait(timeout=5)
        processed.append(item)

    pool = WorkerPool(scheduler, handler, num_workers=1).start()
    for i in range(10):
        scheduler.push(i)
    while pool.active_jobs == 0:  # one job in flight, nine queued
        time.sleep(0.005)
    stopper = threading.Thread(target=pool.shutdown,
                               kwargs={"wait": True, "drain": False})
    stopper.start()
    while not scheduler.closed:  # shutdown signalled; worker still in-flight
        time.sleep(0.005)
    release.set()
    stopper.join(timeout=10)
    assert processed == [0]  # only the in-flight job ran; the rest abandoned


def test_worker_pool_rejects_zero_workers():
    with pytest.raises(ValueError):
        WorkerPool(PriorityScheduler(), lambda i, w: None, num_workers=0)


# -- broker -----------------------------------------------------------------


def test_broker_submit_wait_result(broker):
    ticket = broker.submit(CS1)
    assert ticket.startswith("job-")
    result = broker.result(ticket, timeout=30)
    assert result.execution.succeeded
    assert broker.status(ticket) is JobState.DONE


def test_broker_rejects_empty_query(broker):
    with pytest.raises(BrokerError):
        broker.submit("   ")


def test_broker_rejects_unknown_ticket(broker):
    with pytest.raises(BrokerError):
        broker.status("job-999999")


def test_broker_rejects_unknown_world_key(broker):
    with pytest.raises(BrokerError):
        broker.submit(CS1, world_key="atlantis")


def test_broker_wait_timeout():
    world = build_world(WorldConfig(seed=3, tier1_count=6, tier2_per_region=2,
                                    edge_density=0.5))
    broker = QueryBroker(world, config=ServeConfig(workers=1))  # never started
    ticket = broker.submit(CS1)
    with pytest.raises(TimeoutError):
        broker.wait(ticket, timeout=0.05)
    broker.shutdown()


def test_broker_stats_shape(broker):
    broker.result(broker.submit(CS1), timeout=30)
    stats = broker.stats()
    assert stats["submitted"] >= 1
    assert stats["states"].get("done", 0) >= 1
    assert stats["workers"] == 2
    assert stats["cache"] is not None
    assert stats["worlds"] == ["default"]


def test_broker_failed_job_does_not_kill_worker(broker):
    shard = broker.shard()
    original = shard.system.answer

    def explode(*args, **kwargs):
        raise RuntimeError("synthetic stage failure")

    shard.system.answer = explode
    try:
        bad = broker.submit(CS1_FALCON)
        job = broker.wait(bad, timeout=30)
        assert job.state is JobState.FAILED
        assert "synthetic stage failure" in job.error
        with pytest.raises(BrokerError):
            broker.result(bad)
    finally:
        shard.system.answer = original
    # The pool survives and serves the next submission.
    assert broker.result(broker.submit(CS1), timeout=30).execution.succeeded
    assert broker.ledger.get(bad).status == "failed"


def test_broker_priority_order_single_worker(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    low = broker.submit(CS1, priority=0)
    high = broker.submit(CS1_FALCON, priority=10)
    broker.start()
    broker.wait_all([low, high], timeout=30)
    # The high-priority job must have started first.
    assert (broker.ledger.get(high).started_at
            <= broker.ledger.get(low).started_at)
    broker.shutdown()


def test_broker_tracks_submissions_per_priority_band(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    broker.submit(CS1, priority=0)
    broker.submit(CS1, priority=0)
    broker.submit(CS1_FALCON, priority=100)
    stats = broker.stats()
    assert stats["submitted_by_priority"] == {0: 2, 100: 1}
    assert stats["scheduler"]["pushed_by_priority"] == {0: 2, 100: 1}
    broker.shutdown()


def test_broker_multi_world_sharding(world, small_world):
    broker = QueryBroker(world, config=ServeConfig(workers=2))
    broker.add_world("small", small_world)
    with pytest.raises(BrokerError):
        broker.add_world("small", small_world)
    with broker:
        default_ticket = broker.submit(CS1)
        small_query = ("Identify the impact at a country level due to "
                       f"{small_world.cable_names()[0]} cable failure")
        small_ticket = broker.submit(small_query, world_key="small")
        assert broker.result(default_ticket, timeout=30).execution.succeeded
        assert broker.result(small_ticket, timeout=30).execution.succeeded
    assert broker.shard("small").world is small_world
    assert broker.world_keys() == ["default", "small"]


def test_concurrent_identical_queries_are_deterministic(world):
    """N threads racing the same query must all get identical artifacts."""
    with QueryBroker(world, config=ServeConfig(workers=4)) as broker:
        tickets = [broker.submit(CS1) for _ in range(8)]
        results = [broker.result(t, timeout=60) for t in tickets]
    sources = {r.solution.source_code for r in results}
    finals = {str(r.execution.outputs["final"]) for r in results}
    assert len(sources) == 1
    assert len(finals) == 1


def test_cache_hit_source_is_byte_identical_to_cold(world):
    with QueryBroker(world, config=ServeConfig(workers=1)) as cold_broker:
        cold = cold_broker.result(cold_broker.submit(CS1), timeout=30)
    with QueryBroker(world, config=ServeConfig(workers=1)) as broker:
        broker.result(broker.submit(CS1), timeout=30)  # warm the cache
        warm = broker.result(broker.submit(CS1), timeout=30)
        hit_stages = [s for s in broker.ledger.get("job-000002").stages
                      if s.cache_hit]
    assert {s.stage for s in hit_stages} == {
        "querymind", "workflowscout", "solutionweaver"}
    assert warm.solution.source_code == cold.solution.source_code
    assert warm.solution.source_code.encode() == cold.solution.source_code.encode()


def test_broker_without_cache(world):
    with QueryBroker(world, config=ServeConfig(workers=1, cache_enabled=False)) as broker:
        broker.result(broker.submit(CS1), timeout=30)
        broker.result(broker.submit(CS1), timeout=30)
        assert broker.stats()["cache"] is None
    assert broker.ledger.get("job-000002").cache_hits() == 0


# -- provenance -------------------------------------------------------------


def test_provenance_records_stage_attribution(broker):
    ticket = broker.submit(CS1)
    broker.wait(ticket, timeout=30)
    entry = broker.ledger.get(ticket)
    assert [s.stage for s in entry.stages] == [
        "querymind", "workflowscout", "solutionweaver", "executor"]
    assert entry.status == "done"
    assert entry.worker
    assert entry.run_duration_s >= 0.0
    assert entry.queue_delay_s >= 0.0
    payload = entry.to_dict()
    assert payload["job_id"] == ticket
    assert len(payload["stages"]) == 4


def test_provenance_summary_aggregates(broker):
    for _ in range(3):
        broker.wait(broker.submit(CS1), timeout=30)
    summary = broker.ledger.summary()
    assert summary["finished"] >= 3
    assert summary["per_stage"]["querymind"]["calls"] >= 3
    # Two of the three identical queries should have hit the cache.
    assert summary["per_stage"]["querymind"]["cache_hits"] >= 1
    assert summary["per_stage"]["executor"]["cache_hits"] == 0


# -- campaigns --------------------------------------------------------------


def test_campaign_spec_expands_full_matrix(world):
    spec = CampaignSpec(
        cables=("SeaMeWe-5", "FALCON"),
        disaster_kinds=("earthquake",),
        region_pairs=(("Europe", "Asia"),),
    )
    jobs = spec.expand()
    assert len(jobs) == 4
    tags = [j.tag for j in jobs]
    assert "cable:SeaMeWe-5" in tags
    assert "disaster:earthquake" in tags
    assert "cascade:Europe-Asia" in tags
    assert all(j.query for j in jobs)


def test_campaign_for_world_limit(world):
    spec = CampaignSpec.for_world(world, limit=3, disasters=False)
    assert len(spec.expand()) == 3


def test_run_campaign_aggregates(world):
    with QueryBroker(world, config=ServeConfig(workers=4)) as broker:
        spec = CampaignSpec.for_world(world, limit=4)
        report = run_campaign(broker, spec, timeout=120)
    assert report.total == 6  # 4 cables + 2 disaster kinds
    assert report.succeeded == 6
    assert report.all_succeeded
    assert report.jobs_per_sec > 0
    assert report.top_countries, "cross-scenario aggregation produced no rows"
    assert {"country", "appearances", "mean_score"} <= set(report.top_countries[0])
    assert len(report.outcomes) == 6
    rows = report.summary_rows()
    assert any("jobs" in str(k) for k, _ in rows)


def test_campaign_resubmission_is_mostly_cache_hits(world):
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        jobs = [CampaignJob(query=CS1, tag="a"),
                CampaignJob(query=CS1_FALCON, tag="b")]
        run_campaign(broker, jobs, timeout=60)
        broker.cache.reset_stats()
        report = run_campaign(broker, jobs, timeout=60)
    assert report.succeeded == 2
    assert broker.cache.stats()["hit_rate"] >= 0.9


def test_campaign_accepts_explicit_job_list(world):
    with QueryBroker(world, config=ServeConfig(workers=1)) as broker:
        report = run_campaign(broker, [CampaignJob(query=CS1, tag="only")])
    assert report.total == 1 and report.succeeded == 1


def test_broker_submit_after_shutdown_raises_cleanly(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1)).start()
    broker.shutdown()
    before = broker.stats()["submitted"]
    with pytest.raises(BrokerError, match="shut down"):
        broker.submit(CS1)
    # No orphaned queued job or ledger entry left behind.
    assert broker.stats()["submitted"] == before
    assert broker.stats()["states"].get("queued", 0) == 0
    assert len(broker.ledger) == 0


def test_broker_prunes_finished_jobs_beyond_retention(world):
    config = ServeConfig(workers=1, max_retained_jobs=2)
    with QueryBroker(world, config=config) as broker:
        tickets = [broker.submit(CS1) for _ in range(5)]
        broker.wait(tickets[-1], timeout=60)
        # Let the final prune settle (it runs in the worker thread).
        deadline = time.time() + 5
        while broker.stats()["pruned"] < 3 and time.time() < deadline:
            time.sleep(0.01)
        stats = broker.stats()
    assert stats["pruned"] == 3
    assert stats["finished_total"]["done"] == 5
    assert sum(stats["states"].values()) == 2
    assert len(broker.ledger) == 2
    with pytest.raises(BrokerError):
        broker.status(tickets[0])  # pruned tickets are forgotten


def test_campaign_for_world_limit_zero_means_no_cables(world):
    spec = CampaignSpec.for_world(world, limit=0)
    assert spec.cables == ()
    assert len(spec.expand()) == 2  # the two disaster kinds remain
    with pytest.raises(ValueError):
        CampaignSpec.for_world(world, limit=-1)


# -- job cancellation -------------------------------------------------------


def test_cancel_queued_job(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))  # never started
    ticket = broker.submit(CS1)
    assert broker.cancel(ticket) is True
    assert broker.status(ticket) is JobState.CANCELLED
    assert broker.cancel(ticket) is False  # already settled: explicit no-op
    # Cancelled jobs settle immediately: wait returns, result raises.
    job = broker.wait(ticket, timeout=1)
    assert job.error == "cancelled before execution"
    with pytest.raises(BrokerError, match="cancelled"):
        broker.result(ticket, timeout=1)
    stats = broker.stats()
    assert stats["finished_total"]["cancelled"] == 1
    assert broker.ledger.get(ticket).status == "cancelled"
    broker.shutdown()


def test_cancel_finished_job_is_noop(broker):
    ticket = broker.submit(CS1)
    assert broker.result(ticket, timeout=60).execution.succeeded
    assert broker.cancel(ticket) is False
    assert broker.status(ticket) is JobState.DONE
    assert broker.result(ticket, timeout=1) is not None  # result kept


def test_cancelled_job_never_reaches_a_worker(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    keep = broker.submit(CS1)
    doomed = broker.submit(CS1_FALCON)
    assert broker.cancel(doomed)
    broker.start()
    assert broker.result(keep, timeout=60).execution.succeeded
    broker.shutdown()  # drains the queue, including the cancelled pop
    assert broker.status(doomed) is JobState.CANCELLED
    # The worker skipped it: no start was ever recorded.
    assert broker.ledger.get(doomed).started_at == 0.0
    assert broker.ledger.get(doomed).worker == ""


# -- cache persistence ------------------------------------------------------


def test_cache_spill_load_roundtrip(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = ArtifactCache()
    cache.store("analysis", {"q": "cs1"}, {"intent": "impact", "n": [1, 2]})
    cache.store("design", {"q": "cs1"}, {"steps": ["a", "b"]})
    assert cache.spill(path) == 2

    import json as _json
    document = _json.load(open(path))
    assert document["version"] == 1 and len(document["entries"]) == 2

    fresh = ArtifactCache()
    assert fresh.load(path) == 2
    assert fresh.fetch("analysis", {"q": "cs1"}) == {"intent": "impact", "n": [1, 2]}
    assert fresh.fetch("design", {"q": "cs1"}) == {"steps": ["a", "b"]}


def test_cache_load_respects_lru_bound(tmp_path):
    path = str(tmp_path / "cache.json")
    big = ArtifactCache()
    for i in range(5):
        big.store("analysis", {"q": i}, {"value": i})
    big.spill(path)

    small = ArtifactCache(max_entries=3)
    assert small.load(path) == 5
    assert len(small) == 3
    # The most recently stored entries survive the bound.
    assert small.fetch("analysis", {"q": 4}) == {"value": 4}
    assert small.fetch("analysis", {"q": 0}) is None


def test_cache_load_merge_keeps_live_entries_fresher(tmp_path):
    path = str(tmp_path / "cache.json")
    spilled = ArtifactCache()
    spilled.store("analysis", {"q": "old"}, {"value": "old"})
    spilled.spill(path)

    live = ArtifactCache(max_entries=2)
    live.store("analysis", {"q": "live"}, {"value": "live"})
    live.load(path)
    # Adding one more entry evicts the loaded (older) one, not the live one.
    live.store("analysis", {"q": "new"}, {"value": "new"})
    assert live.fetch("analysis", {"q": "live"}) == {"value": "live"}
    assert live.fetch("analysis", {"q": "old"}) is None


def test_cache_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(ValueError, match="version"):
        ArtifactCache().load(str(path))


def test_broker_cache_survives_restart_via_spill(world, tmp_path):
    path = str(tmp_path / "cache.json")
    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        assert broker.result(broker.submit(CS1), timeout=60).execution.succeeded
        broker.cache.spill(path)

    with QueryBroker(world, config=ServeConfig(workers=2)) as broker:
        broker.cache.load(path)
        broker.cache.reset_stats()
        assert broker.result(broker.submit(CS1), timeout=60).execution.succeeded
        stats = broker.cache.stats()
    # All three deterministic agent stages were warm on the "restarted" broker.
    assert stats["per_stage"]["analysis"]["hits"] == 1
    assert stats["per_stage"]["design"]["hits"] == 1
    assert stats["per_stage"]["solution"]["hits"] == 1


# -- scheduler fairness under contention ------------------------------------


def test_scheduler_priority_bands_fifo_across_shards_under_contention():
    """Many jobs, two shards, same band: service stays strict arrival order
    (neither shard can starve the other), and higher bands always preempt."""
    scheduler = PriorityScheduler()
    arrivals = []
    for i in range(20):
        shard = "w1" if i % 2 == 0 else "w2"
        scheduler.push(f"job-{i}", priority=0, shard=shard)
        arrivals.append(f"job-{i}")
    scheduler.push("urgent", priority=9, shard="w2")
    drained = [scheduler.pop(timeout=0.1) for _ in range(21)]
    assert drained[0] == "urgent"
    assert drained[1:] == arrivals  # round-robin by arrival across shards
    assert scheduler.stats()["per_shard_queued"] == {}


def test_broker_priority_bands_under_contention_single_worker(world):
    """One worker, contended queue: band order first, then FIFO within band,
    interleaving both world shards in arrival order."""
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    broker.add_world("second", world)
    low = [
        broker.submit(CS1, world_key="default"),
        broker.submit(CS1_FALCON, world_key="second"),
        broker.submit(CS1_FALCON, world_key="default"),
        broker.submit(CS1, world_key="second"),
    ]
    high = broker.submit(CS1, priority=5, world_key="second")
    broker.start()
    broker.wait_all(low + [high], timeout=120)
    broker.shutdown()
    started = {t: broker.ledger.get(t).started_at for t in low + [high]}
    assert started[high] <= min(started[t] for t in low)
    assert sorted(low, key=lambda t: started[t]) == low  # FIFO across shards


def test_retention_pruning_spares_unfinished_tickets(world):
    """Pruning may only evict finished jobs — queued tickets survive even
    when the retention bound is exceeded, and finish normally later."""
    broker = QueryBroker(world, config=ServeConfig(workers=1,
                                                  max_retained_jobs=2))
    tickets = [broker.submit(CS1) for _ in range(5)]
    for doomed in tickets[:4]:
        broker.cancel(doomed)
    stats = broker.stats()
    # Bound is 2 and only finished (cancelled) jobs were evictable: the one
    # queued ticket plus the newest cancelled one remain.
    assert stats["pruned"] == 3
    assert stats["states"] == {"queued": 1, "cancelled": 1}
    with pytest.raises(BrokerError):
        broker.status(tickets[0])  # pruned
    assert broker.status(tickets[4]) is JobState.QUEUED  # spared
    broker.start()
    assert broker.result(tickets[4], timeout=60).execution.succeeded
    broker.shutdown()
