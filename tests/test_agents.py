"""Agents: artifact production, validation, expert-mode semantics."""

import pytest

from repro.core.agents import QueryMind, RegistryCurator, SolutionWeaver, WorkflowScout
from repro.core.agents.base import AgentError
from repro.core.artifacts import (
    Complexity,
    Constraint,
    ExecutionOutcome,
    ProblemKind,
)
from repro.core.llm.scripted import ScriptedLLM
from repro.core.llm.simulated import SimulatedLLM
from repro.core.pipeline import build_data_context
from repro.core.registry import default_registry

CS1_QUERY = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
CS2_QUERY = ("Identify the impact of severe earthquakes and hurricanes globally "
             "assuming a 10% infra failure probability")


@pytest.fixture()
def registry():
    return default_registry()


@pytest.fixture()
def llm():
    return SimulatedLLM()


# -- QueryMind ----------------------------------------------------------------------

def test_querymind_produces_analysis(world, registry, llm):
    agent = QueryMind(llm, registry)
    analysis = agent.analyze(CS1_QUERY, build_data_context(world))
    assert analysis.intent == "cable_failure_impact"
    assert analysis.entities["cable_names"] == ["SeaMeWe-5"]
    assert analysis.complexity in (Complexity.SIMPLE, Complexity.MODERATE,
                                   Complexity.COMPLEX)
    kinds = {sp.kind for sp in analysis.sub_problems}
    assert ProblemKind.MAPPING in kinds
    assert ProblemKind.SYNTHESIS in kinds
    assert analysis.success_criteria


def test_querymind_rejects_empty_query(world, registry, llm):
    agent = QueryMind(llm, registry)
    with pytest.raises(ValueError):
        agent.analyze("  ", build_data_context(world))


def test_querymind_flags_unknown_cable_blocking(world, registry, llm):
    agent = QueryMind(llm, registry)
    analysis = agent.analyze(
        "Identify the impact of the Atlantis-9 cable failure",
        build_data_context(world),
    )
    assert analysis.blocking_constraints()


def test_querymind_retry_on_malformed(world, registry):
    llm = SimulatedLLM(fail_first_attempts=1)
    agent = QueryMind(llm, registry)
    analysis = agent.analyze(CS1_QUERY, build_data_context(world))
    assert analysis.intent == "cable_failure_impact"


def test_querymind_fails_after_exhausted_retries(world, registry):
    agent = QueryMind(ScriptedLLM(["junk", "junk", "junk"]), registry)
    with pytest.raises(AgentError):
        agent.analyze(CS1_QUERY, build_data_context(world))


# -- WorkflowScout ------------------------------------------------------------------

def test_scout_designs_valid_workflow(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS1_QUERY, build_data_context(world))
    design = WorkflowScout(llm, registry).design(analysis)
    assert design.chosen.steps
    assert design.exploration_mode in ("direct", "comparative")
    step_ids = [s.id for s in design.chosen.steps]
    assert len(step_ids) == len(set(step_ids))


def test_scout_refuses_blocking_constraints(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS1_QUERY, build_data_context(world))
    analysis.constraints.append(
        Constraint(kind="data", description="no data", blocking=True)
    )
    with pytest.raises(AgentError, match="blocking"):
        WorkflowScout(llm, registry).design(analysis)


def test_scout_restricted_registry_falls_back(world, llm):
    restricted = default_registry().subset(frameworks=["nautilus"])
    analysis = QueryMind(llm, restricted).analyze(CS1_QUERY, build_data_context(world))
    design = WorkflowScout(llm, restricted).design(analysis)
    targets = {s.target for s in design.chosen.steps}
    assert "aggregate_impact_by_country" in targets  # derived pipeline
    assert design.chosen.frameworks_used() == ["nautilus"]


def test_scout_full_registry_uses_xaminer_directly(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS1_QUERY, build_data_context(world))
    design = WorkflowScout(llm, registry).design(analysis)
    targets = {s.target for s in design.chosen.steps}
    assert "xaminer.country_impact" in targets
    assert "aggregate_impact_by_country" not in targets


def test_scout_records_alternatives_for_complex(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS2_QUERY, build_data_context(world))
    design = WorkflowScout(llm, registry).design(analysis)
    assert design.exploration_mode == "comparative"
    assert design.alternatives


# -- SolutionWeaver ------------------------------------------------------------------

def test_weaver_generates_compilable_code(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS1_QUERY, build_data_context(world))
    design = WorkflowScout(llm, registry).design(analysis)
    solution = SolutionWeaver(llm, registry).implement(design, analysis)
    compile(solution.source_code, "<test>", "exec")
    assert solution.loc > 30
    assert solution.qa_checks
    assert solution.entrypoint == "run"


def test_weaver_embeds_qa_by_intent(world, registry, llm):
    analysis = QueryMind(llm, registry).analyze(CS2_QUERY, build_data_context(world))
    design = WorkflowScout(llm, registry).design(analysis)
    solution = SolutionWeaver(llm, registry).implement(design, analysis)
    assert "sanity_bounds" in solution.qa_checks
    assert "qa_sanity_bounds" in solution.source_code


# -- RegistryCurator ------------------------------------------------------------------

def _cs1_design(world, llm):
    restricted = default_registry().subset(frameworks=["nautilus"])
    analysis = QueryMind(llm, restricted).analyze(CS1_QUERY, build_data_context(world))
    return WorkflowScout(llm, restricted).design(analysis), restricted


def test_curator_promotes_validated_pattern(world, llm):
    design, registry = _cs1_design(world, llm)
    curator = RegistryCurator(llm, registry)
    report = curator.curate(design, ExecutionOutcome(succeeded=True), registry)
    assert "composite.cable_country_impact" in report.added_entries
    entry = registry.get("composite.cable_country_impact")
    assert entry.provenance == "curator"


def test_curator_rejects_failed_execution(world, llm):
    design, registry = _cs1_design(world, llm)
    curator = RegistryCurator(llm, registry)
    report = curator.curate(design, ExecutionOutcome(succeeded=False, error="boom"),
                            registry)
    assert report.added_entries == []


def test_curator_no_duplicate_promotion(world, llm):
    design, registry = _cs1_design(world, llm)
    curator = RegistryCurator(llm, registry)
    first = curator.curate(design, ExecutionOutcome(succeeded=True), registry)
    assert first.added_entries
    second = curator.curate(design, ExecutionOutcome(succeeded=True), registry)
    assert second.added_entries == []
    rejected = [c for c in second.candidates if not c.validated]
    assert rejected and all(c.rejection_reason for c in rejected)
