"""Incremental re-convergence: equality with full SPF, LRU bounds, sharing."""

import pytest

from repro.bgp.collector import BGPCollectorSim, CollectorConfig, shared_collector
from repro.live.clock import WorldTimeline, timeline_from_catalog
from repro.topology.relations import ASGraph, failed_as_pairs
from repro.topology.routing import ValleyFreeRouter, path_adjacencies, path_crosses
from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def catalog_failure_sets(world):
    """Every distinct failed-link set the scenario-catalog timeline visits,
    including overlapping multi-event unions (36-epoch outages overlap the
    24-epoch catalog spacing)."""
    events = timeline_from_catalog(world, duration_epochs=36)
    timeline = WorldTimeline(world, events)
    states = timeline.run(240)
    return list(dict.fromkeys(s.failed_link_ids for s in states))


def test_incremental_equals_full_for_every_catalog_failure_set(
    world, catalog_failure_sets
):
    assert len(catalog_failure_sets) > 5  # the timeline really is multi-event
    sim = BGPCollectorSim(world)
    reference = BGPCollectorSim(world)
    for failure_set in catalog_failure_sets:
        assert sim.routes_under(failure_set) == reference.routes_under_full(
            failure_set
        ), f"diverged for failure set of {len(failure_set)} links"


def test_incremental_equality_survives_eviction_and_revisit(world, catalog_failure_sets):
    """A tiny LRU forces evictions mid-timeline; recomputed tables must
    still match the full reference."""
    sim = BGPCollectorSim(world, CollectorConfig(route_cache_entries=2))
    reference = BGPCollectorSim(world)
    sequence = list(catalog_failure_sets) + list(reversed(catalog_failure_sets))
    for failure_set in sequence:
        assert sim.routes_under(failure_set) == reference.routes_under_full(failure_set)
    info = sim.cache_info()
    assert info["entries"] <= 2
    assert info["evictions"] > 0


def test_route_cache_lru_bound_and_pinned_baseline(world, catalog_failure_sets):
    sim = BGPCollectorSim(world, CollectorConfig(route_cache_entries=3))
    baseline = sim.routes_under(frozenset())
    for failure_set in catalog_failure_sets:
        sim.routes_under(failure_set)
    info = sim.cache_info()
    assert info["entries"] <= 3
    assert info["evictions"] > 0
    # The baseline is pinned: still served without a recompute.
    recomputes_before = sim.cache_info()["full_recomputes"]
    assert sim.routes_under(frozenset()) is baseline
    assert sim.cache_info()["full_recomputes"] == recomputes_before


def test_cache_info_counts_hits_and_misses(world):
    sim = BGPCollectorSim(world)
    sim.routes_under(frozenset())
    sim.routes_under(frozenset())
    sim.routes_under(frozenset())
    info = sim.cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 2
    assert info["full_recomputes"] == 1


def test_parallel_link_failure_shares_baseline_wholesale(world):
    """Failing one link of a multi-link adjacency severs nothing — the
    baseline table is shared structurally (same object)."""
    sim = BGPCollectorSim(world)
    links_per_pair = {}
    for link in world.ip_links:
        links_per_pair.setdefault(link.as_pair, []).append(link.id)
    redundant = next(
        ids for ids in links_per_pair.values() if len(ids) >= 2
    )
    baseline = sim.routes_under(frozenset())
    shared = sim.routes_under(frozenset(redundant[:1]))
    assert shared is baseline
    assert sim.cache_info()["shared_full_tables"] == 1


def test_affected_frontier_shares_unaffected_peer_routes(world, catalog_failure_sets):
    """Where the frontier leaves peers untouched, their route tuples are the
    baseline objects, not copies — sharing is structural."""
    sim = BGPCollectorSim(world)
    baseline = sim.routes_under(frozenset())
    shared_rows = 0
    for failure_set in catalog_failure_sets:
        degraded = sim.routes_under(failure_set)
        if degraded is baseline:
            continue  # shared wholesale — even stronger
        shared_rows += sum(
            1 for key, path in degraded.items()
            if key in baseline and baseline[key] is path
        )
    info = sim.cache_info()
    assert info["incremental_recomputes"] >= 1
    assert info["peers_shared"] > 0
    assert shared_rows > 0  # structural sharing, not value-equal copies


def test_path_helpers():
    dead = {(2, 3)}
    assert path_crosses((1, 2, 3, 4), dead)
    assert path_crosses((4, 3, 2), dead)  # direction-insensitive
    assert not path_crosses((1, 2, 4), dead)
    assert path_adjacencies((3, 1, 2)) == {(1, 3), (1, 2)}


def test_router_dead_pairs_filter_matches_pruned_graph(world):
    """Routing around dead pairs must equal routing on the pruned graph —
    same winners, same deterministic tie-breaks."""
    graph = ASGraph.from_world(world)
    failed = [link.id for link in world.submarine_links()[:10]]
    dead = failed_as_pairs(world, failed)
    if not dead:
        pytest.skip("failure sample severed no adjacency")
    pruned_router = ValleyFreeRouter(graph.without_pairs(dead))
    filtered_router = ValleyFreeRouter(graph, dead_pairs=dead)
    src = sorted(graph.all_asns)[0]
    assert pruned_router.paths_from(src) == filtered_router.paths_from(src)


def test_shared_collector_memoizes_per_world_and_config(world):
    a = shared_collector(world)
    b = shared_collector(world)
    c = shared_collector(world, CollectorConfig(seed=99))
    assert a is b
    assert c is not a
    other = build_world(WorldConfig(seed=12))
    assert shared_collector(other) is not a


def test_shared_collector_generates_identical_updates(world, incident):
    """Sharing the collector (and its route cache) must not change the
    update stream a fresh collector would produce."""
    fresh = BGPCollectorSim(world).generate_updates(0.0, 86_400.0 * 7, [incident])
    shared = shared_collector(world)
    first = shared.generate_updates(0.0, 86_400.0 * 7, [incident])
    second = shared.generate_updates(0.0, 86_400.0 * 7, [incident])
    assert first == fresh
    assert second == fresh  # warm route cache, identical stream


def test_world_memoizes_prefixes_and_fingerprint():
    world = build_world(WorldConfig(seed=5))
    assert world.all_prefixes() is world.all_prefixes()
    first = world.fingerprint()
    assert world.fingerprint() == first
    assert world.fingerprint() is world._fingerprint


# -- raw routing core: converge_full, delta streams, pinning, metrics --------


def test_converge_full_matches_routes_under_full(world, catalog_failure_sets):
    """The int-indexed engine's one-shot convergence must be byte-identical
    to the legacy-router full recompute — values and row order."""
    sim = BGPCollectorSim(world)
    for failure_set in [frozenset()] + catalog_failure_sets[:4]:
        fast = sim.converge_full(failure_set)
        slow = sim.routes_under_full(failure_set)
        assert list(fast.items()) == list(slow.items())


def test_deltas_since_apply_reconstructs_and_counts(world, catalog_failure_sets):
    sim = BGPCollectorSim(world)
    baseline = sim.routes_under(frozenset())
    target = next(fs for fs in catalog_failure_sets if fs)
    before = sim.cache_info()
    delta = sim.deltas_since(frozenset(), target)
    assert delta.apply(baseline) == sim.routes_under(target)
    assert not delta.empty
    assert delta.nbytes > 0
    info = sim.cache_info()
    assert info["delta_emits"] == before["delta_emits"] + 1
    assert info["delta_routes"] == before["delta_routes"] + delta.route_count
    assert info["delta_bytes"] == before["delta_bytes"] + delta.nbytes


def test_delta_stream_pin_protects_position_from_eviction(
    world, catalog_failure_sets
):
    """The stream's current position must survive any cache pressure; once
    the stream closes, the entry becomes an ordinary eviction candidate."""
    nonempty = [fs for fs in catalog_failure_sets if fs]
    assert len(nonempty) >= 5
    sim = BGPCollectorSim(world, CollectorConfig(route_cache_entries=2))
    stream = sim.delta_stream()
    position = nonempty[0]
    stream.advance(position)
    table = sim.routes_under(position)
    for failure_set in nonempty[1:5]:  # flood the tiny LRU
        sim.routes_under(failure_set)
    assert sim.cache_info()["pinned"] == 1
    misses_before = sim.cache_info()["misses"]
    assert sim.routes_under(position) is table  # pinned: same object, no miss
    assert sim.cache_info()["misses"] == misses_before

    stream.close()
    assert stream.closed
    assert sim.cache_info()["pinned"] == 0
    for failure_set in nonempty[1:5]:
        sim.routes_under(failure_set)
    misses_before = sim.cache_info()["misses"]
    sim.routes_under(position)  # unpinned entry was evicted: recompute
    assert sim.cache_info()["misses"] == misses_before + 1


def test_delta_stream_stats_and_context_manager(world, catalog_failure_sets):
    sim = BGPCollectorSim(world)
    with sim.delta_stream() as stream:
        total_routes = 0
        for failure_set in catalog_failure_sets[:3]:
            total_routes += stream.advance(failure_set).route_count
        stats = stream.stats()
        assert stats["deltas_emitted"] == 3
        assert stats["routes_emitted"] == total_routes
        assert stats["bytes_emitted"] > 0
    assert stream.stats()["closed"]
    with pytest.raises(RuntimeError):
        stream.advance(frozenset())


def test_cache_info_exposes_repair_and_delta_counters(world):
    info = BGPCollectorSim(world).cache_info()
    for key in (
        "pinned", "pairs_repaired", "pairs_shared", "repair_frontier_peak",
        "delta_emits", "delta_routes", "delta_bytes",
    ):
        assert key in info, key


def test_sync_metrics_is_idempotent_across_scrapes(world, catalog_failure_sets):
    from repro.obs.metrics import MetricsRegistry

    sim = BGPCollectorSim(world)
    for failure_set in catalog_failure_sets[:3]:
        sim.routes_under(failure_set)
    registry = MetricsRegistry()
    sim.attach_metrics(registry, {"world": "t"})
    text = registry.prometheus_text()
    assert 'routing_misses_total{world="t"}' in text
    misses = registry.counter("routing_misses_total", {"world": "t"}).value
    assert misses == sim.cache_info()["misses"]
    registry.prometheus_text()  # second scrape: high-water mark, no re-count
    assert registry.counter(
        "routing_misses_total", {"world": "t"}
    ).value == misses
    sim.routes_under(frozenset("no-such-link"))  # new work shows up as +1
    registry.prometheus_text()
    assert registry.counter(
        "routing_misses_total", {"world": "t"}
    ).value == misses + 1


def test_broker_scrape_surfaces_routing_series(world):
    from repro.serve import QueryBroker, ServeConfig

    broker = QueryBroker(world, config=ServeConfig(workers=1))  # never started
    sim = shared_collector(broker.shard().world)
    sim.routes_under(frozenset())
    text = broker.metrics.prometheus_text()
    assert 'routing_full_recomputes_total{world="default"}' in text
    assert 'routing_route_cache_entries{world="default"}' in text
