"""Differential cross-backend testing: randomized seeded campaigns must
produce byte-identical artifacts on the thread and process backends.

The pipeline's determinism contract says an answer is a pure function of
(query, params, world config, registry) — the execution plane must never
leak into the artifact.  These tests fan *randomized* (but seeded, so
reproducible) workloads across both backends and compare
``PipelineResult.artifact_digest()`` per job.
"""

import random

import pytest

from repro.serve import CampaignSpec, JobState, QueryBroker, ServeConfig, run_campaign
from repro.serve.campaign import (
    CABLE_IMPACT_TEMPLATE,
    CASCADE_TEMPLATE,
    DISASTER_TEMPLATE,
    CampaignJob,
)
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world

FORENSIC_TEMPLATE = (
    "A sudden increase in latency was observed from {src} probes to {dst} "
    "destinations starting three days ago. Determine if a submarine cable "
    "failure caused this, and if so, identify the specific cable."
)


@pytest.fixture(scope="module")
def diff_world():
    """A smaller config-reproducible world (the process backend rebuilds
    worlds from their WorldConfig in every worker)."""
    return build_world(WorldConfig(seed=3, tier1_count=6, tier2_per_region=2,
                                   edge_density=0.5))


def random_campaign(world, seed: int, jobs: int = 4) -> list[CampaignJob]:
    """A seeded random scenario mix: cable impacts, disasters, cascades and
    a forensic question, drawn from the world's own catalog."""
    rng = random.Random(seed)
    cables = list(world.cable_names())
    rng.shuffle(cables)
    pool = [
        CampaignJob(query=CABLE_IMPACT_TEMPLATE.format(cable=cables[0]),
                    tag=f"cable:{cables[0]}"),
        CampaignJob(query=CABLE_IMPACT_TEMPLATE.format(cable=cables[1]),
                    tag=f"cable:{cables[1]}"),
        CampaignJob(
            query=DISASTER_TEMPLATE.format(
                kind=rng.choice(("earthquake", "hurricane")),
                probability=rng.choice((0.05, 0.1, 0.2)),
            ),
            tag="disaster",
        ),
        CampaignJob(
            query=CASCADE_TEMPLATE.format(
                src=rng.choice(("Europe", "Asia")),
                dst=rng.choice(("Asia", "North America")),
            ),
            tag="cascade",
        ),
        CampaignJob(
            query=FORENSIC_TEMPLATE.format(
                src=rng.choice(("European", "Asian")),
                dst=rng.choice(("Asian", "North America")),
            ),
            tag="forensic",
        ),
    ]
    rng.shuffle(pool)
    return pool[:jobs]


def _digests_for(world, backend: str, jobs, incidents=None,
                 cache_enabled=True) -> dict[str, str]:
    broker = QueryBroker(
        world,
        incidents=incidents,
        config=ServeConfig(workers=2, backend=backend,
                           cache_enabled=cache_enabled),
    ).start()
    try:
        report = run_campaign(broker, jobs, timeout=480)
        digests = {}
        for job_spec, ticket in zip(jobs, report.tickets):
            job = broker.job(ticket)
            assert job.state is JobState.DONE, (
                f"{backend}/{job_spec.tag}: {job.error}"
            )
            digests[job_spec.tag] = job.result.artifact_digest()
    finally:
        broker.shutdown()
    return digests


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_campaign_digests_identical_across_backends(diff_world, seed):
    jobs = random_campaign(diff_world, seed)
    incident = make_latency_incident(diff_world, diff_world.cable_names()[0])
    thread = _digests_for(diff_world, "thread", jobs, incidents=[incident])
    process = _digests_for(diff_world, "process", jobs, incidents=[incident])
    assert thread == process
    assert len(thread) == len(jobs)
    assert all(len(d) == 64 for d in thread.values())


def test_digests_stable_across_cache_modes(diff_world):
    """The artifact cache must change economics, never bytes."""
    jobs = random_campaign(diff_world, seed=5, jobs=2)
    cached = _digests_for(diff_world, "thread", jobs, cache_enabled=True)
    uncached = _digests_for(diff_world, "thread", jobs, cache_enabled=False)
    assert cached == uncached


def test_epoch_shard_forensic_job_identical_across_backends(diff_world):
    """The forensic loop's evolved-world shards (base world + injected
    incidents) must also serve byte-identical artifacts on both backends —
    incidents travel inside the process backend's payload template."""
    cable = diff_world.cable_names()[0]
    incidents = [make_latency_incident(diff_world, cable)]
    query = FORENSIC_TEMPLATE.format(src="European", dst="Asian")
    digests = {}
    for backend in ("thread", "process"):
        broker = QueryBroker(
            config=ServeConfig(workers=2, backend=backend)
        ).start()
        try:
            broker.add_world("epoch", diff_world, incidents=incidents)
            ticket = broker.submit(query, priority=100, world_key="epoch")
            digests[backend] = broker.result(ticket, timeout=480).artifact_digest()
        finally:
            broker.shutdown()
    assert digests["thread"] == digests["process"]


@pytest.mark.slow
def test_campaign_report_aggregates_identical_across_backends(diff_world):
    """Beyond per-job bytes: the cross-scenario aggregation (top exposed
    countries) must match, since it is derived purely from the artifacts."""
    spec = CampaignSpec.for_world(diff_world, limit=3, disasters=False)
    tops = {}
    for backend in ("thread", "process"):
        broker = QueryBroker(
            diff_world, config=ServeConfig(workers=2, backend=backend)
        ).start()
        try:
            report = run_campaign(broker, spec, timeout=480)
            assert report.all_succeeded
            tops[backend] = report.top_countries
        finally:
            broker.shutdown()
    assert tops["thread"] == tops["process"]
