"""Geography substrate: catalog integrity and distance math."""

import math

import pytest

from repro.synth.geography import (
    COASTAL_CITIES,
    COUNTRIES,
    Region,
    all_country_codes,
    city_by_name,
    countries_in_region,
    country_by_code,
    haversine_km,
    interpolate,
    path_length_km,
    point_within_radius,
)


def test_country_codes_unique():
    codes = [c.code for c in COUNTRIES]
    assert len(codes) == len(set(codes))


def test_country_lookup_roundtrip():
    for country in COUNTRIES:
        assert country_by_code(country.code) is country


def test_country_lookup_unknown_raises():
    with pytest.raises(KeyError):
        country_by_code("XX")


def test_every_region_has_countries():
    for region in Region:
        assert countries_in_region(region), f"region {region} is empty"


def test_coastal_cities_reference_known_countries():
    codes = set(all_country_codes())
    for city in COASTAL_CITIES:
        assert city.country_code in codes


def test_coastal_city_names_unique():
    names = [c.name for c in COASTAL_CITIES]
    assert len(names) == len(set(names))


def test_city_lookup_unknown_raises():
    with pytest.raises(KeyError):
        city_by_name("Atlantis")


def test_haversine_zero_for_same_point():
    assert haversine_km((10.0, 20.0), (10.0, 20.0)) == 0.0


def test_haversine_known_distance_paris_london():
    paris = (48.8566, 2.3522)
    london = (51.5074, -0.1278)
    distance = haversine_km(paris, london)
    assert 330 < distance < 360  # ~344 km


def test_haversine_symmetry():
    a, b = (43.3, 5.37), (1.35, 103.8)
    assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


def test_haversine_antipodal_bounded_by_half_circumference():
    distance = haversine_km((0.0, 0.0), (0.0, 180.0))
    assert distance == pytest.approx(math.pi * 6371.0, rel=1e-3)


def test_path_length_sums_segments():
    points = [(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]
    total = path_length_km(points)
    assert total == pytest.approx(
        haversine_km(points[0], points[1]) + haversine_km(points[1], points[2])
    )


def test_path_length_degenerate():
    assert path_length_km([]) == 0.0
    assert path_length_km([(1.0, 1.0)]) == 0.0


def test_point_within_radius():
    assert point_within_radius((43.3, 5.4), (43.3, 5.4), 1.0)
    assert not point_within_radius((43.3, 5.4), (1.35, 103.8), 500.0)


def test_interpolate_endpoints_and_midpoint():
    a, b = (0.0, 0.0), (10.0, 20.0)
    assert interpolate(a, b, 0.0) == a
    assert interpolate(a, b, 1.0) == b
    assert interpolate(a, b, 0.5) == (5.0, 10.0)


def test_interpolate_rejects_out_of_range():
    with pytest.raises(ValueError):
        interpolate((0, 0), (1, 1), 1.5)
