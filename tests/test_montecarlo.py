"""Monte Carlo impact sweeps: determinism, bounds, monotonicity."""

import pytest

from repro.xaminer.montecarlo import monte_carlo_impact, monte_carlo_sweep
from repro.synth.scenarios import cable_cut_event, default_disaster_catalog


@pytest.fixture(scope="module")
def quake():
    return default_disaster_catalog()[0]  # severe Taiwan-analogue earthquake


def test_deterministic_per_seed(world, quake):
    a = monte_carlo_impact(world, quake, 0.3, trials=30, base_seed=5)
    b = monte_carlo_impact(world, quake, 0.3, trials=30, base_seed=5)
    assert a.to_dict() == b.to_dict()


def test_frequencies_match_probability(world, quake):
    summary = monte_carlo_impact(world, quake, 0.5, trials=200)
    assert summary.cable_failure_frequency
    for frequency in summary.cable_failure_frequency.values():
        assert 0.3 <= frequency <= 0.7  # binomial around 0.5


def test_probability_zero_and_one(world, quake):
    nothing = monte_carlo_impact(world, quake, 0.0, trials=10)
    assert nothing.no_failure_fraction == 1.0
    assert nothing.mean_capacity_lost_gbps == 0.0
    certain = monte_carlo_impact(world, quake, 1.0, trials=10)
    assert certain.no_failure_fraction == 0.0
    for frequency in certain.cable_failure_frequency.values():
        assert frequency == 1.0


def test_sweep_mean_loss_monotone(world, quake):
    sweep = monte_carlo_sweep(world, quake, [0.1, 0.5, 1.0], trials=60)
    losses = [s.mean_capacity_lost_gbps for s in sweep]
    assert losses[0] <= losses[1] <= losses[2]
    assert losses[2] > 0


def test_p95_at_least_mean_shape(world, quake):
    summary = monte_carlo_impact(world, quake, 0.3, trials=100)
    assert summary.p95_capacity_lost_gbps >= 0
    assert summary.p95_capacity_lost_gbps >= summary.mean_capacity_lost_gbps * 0.5


def test_ranked_countries_sorted(world):
    event = cable_cut_event(world, "SeaMeWe-5")
    summary = monte_carlo_impact(world, event, 1.0, trials=5)
    rows = summary.ranked_countries()
    means = [r["mean_score"] for r in rows]
    assert means == sorted(means, reverse=True)
    assert rows  # a certain cut always produces impact


def test_trials_validation(world, quake):
    with pytest.raises(ValueError):
        monte_carlo_impact(world, quake, 0.5, trials=0)


def test_accepts_dict_events(world):
    summary = monte_carlo_impact(
        world, {"kind": "cable_cut", "cable_names": ["FALCON"]}, 1.0, trials=3
    )
    assert summary.cable_failure_frequency == {"cable-falcon": 1.0}
