"""LLM layer: client plumbing, prompt sections, simulated backend, knowledge."""

import json

import pytest

from repro.core.llm.client import (
    LLMParseError,
    LLMRequest,
    complete_json,
    extract_json,
)
from repro.core.llm.knowledge import detect_intent, extract_entities, find_entry
from repro.core.llm.prompts import querymind_prompt, section, section_json
from repro.core.llm.scripted import ScriptedLLM
from repro.core.llm.simulated import SimulatedLLM
from repro.core.pipeline import build_data_context
from repro.core.registry import default_registry


# -- JSON extraction ------------------------------------------------------------

def test_extract_json_fenced():
    assert extract_json('```json\n{"a": 1}\n```') == {"a": 1}


def test_extract_json_bare():
    assert extract_json('{"a": 1}') == {"a": 1}


def test_extract_json_embedded_in_prose():
    assert extract_json('Sure! Here is the plan: {"a": [1, 2]} Hope it helps.') == {"a": [1, 2]}


def test_extract_json_failure():
    with pytest.raises(LLMParseError):
        extract_json("no json anywhere")


# -- retry loop ------------------------------------------------------------------

def test_complete_json_retries_on_garbage():
    llm = ScriptedLLM(["garbage", "more garbage", '{"ok": true}'])
    request = LLMRequest(agent="querymind", system="s", user="u")
    assert complete_json(llm, request, max_attempts=3) == {"ok": True}
    assert llm.remaining == 0
    # Retry prompts must carry the failure feedback.
    assert "PREVIOUS ATTEMPT FAILED" in llm.requests[-1].user


def test_complete_json_exhausts_attempts():
    llm = ScriptedLLM(["x", "y", "z"])
    request = LLMRequest(agent="querymind", system="s", user="u")
    with pytest.raises(LLMParseError):
        complete_json(llm, request, max_attempts=3)


def test_complete_json_validator_failures_retry():
    llm = ScriptedLLM(['{"bad": 1}', '{"good": 1}'])

    def validator(payload):
        if "good" not in payload:
            raise ValueError("missing good")

    request = LLMRequest(agent="querymind", system="s", user="u")
    assert complete_json(llm, request, validator=validator, max_attempts=2) == {"good": 1}


def test_scripted_llm_exhaustion():
    from repro.core.llm.client import LLMError

    llm = ScriptedLLM([])
    with pytest.raises(LLMError):
        llm.complete(LLMRequest(agent="a", system="s", user="u"))


# -- prompt sections ----------------------------------------------------------------

def test_section_extraction(world):
    prompt = querymind_prompt("What about cables?", default_registry().to_prompt_text(),
                              build_data_context(world))
    assert section(prompt, "QUERY").strip() == "What about cables?"
    rows = section_json(prompt, "REGISTRY")
    assert any(r["name"] == "xaminer.process_event" for r in rows)
    context = section_json(prompt, "DATA CONTEXT")
    assert "SeaMeWe-5" in context["cable_names"]


def test_section_missing_raises():
    with pytest.raises(KeyError):
        section("## A\nbody", "B")


# -- intent detection -----------------------------------------------------------------

@pytest.mark.parametrize(
    "query,expected",
    [
        ("Identify the impact at a country level due to SeaMeWe-5 cable failure",
         "cable_failure_impact"),
        ("Identify the impact of severe earthquakes and hurricanes globally "
         "assuming a 10% infra failure probability", "multi_disaster_impact"),
        ("Analyze the cascading effects of submarine cable failures between "
         "Europe and Asia", "cascading_failure"),
        ("A sudden increase in latency was observed from European probes to "
         "Asian destinations starting three days ago. Determine if a submarine "
         "cable failure caused this, and if so, identify the specific cable.",
         "latency_forensics"),
        ("How exposed is Singapore to single cable failures?", "risk_assessment"),
        ("Tell me something about the network", "generic_impact"),
    ],
)
def test_intent_detection(query, expected):
    assert detect_intent(query) == expected


# -- entity extraction ------------------------------------------------------------------

def test_entity_extraction_grounded(world):
    context = build_data_context(world)
    entities = extract_entities(
        "Identify the impact at a country level due to SeaMeWe-5 cable failure",
        context,
    )
    assert entities["cable_names"] == ["SeaMeWe-5"]
    assert entities["aggregation_level"] == "country"


def test_entity_extraction_probability_and_days(world):
    context = build_data_context(world)
    entities = extract_entities(
        "assume a 10% failure probability starting three days ago in Europe",
        context,
    )
    assert entities["failure_probability"] == pytest.approx(0.1)
    assert entities["days_since_onset"] == 3
    assert entities["regions"] == ["europe"]


def test_entity_extraction_ignores_unknown_cables(world):
    context = build_data_context(world)
    entities = extract_entities("impact of the Atlantis-9 cable failure", context)
    assert "cable_names" not in entities


# -- knowledge helpers ---------------------------------------------------------------------

def test_find_entry_prefers_named():
    index = {
        "a.x": {"capabilities": ["impact_analysis"]},
        "b.y": {"capabilities": ["impact_analysis", "country_aggregation"]},
    }
    assert find_entry(index, ["impact_analysis"], prefer="a.x") == "a.x"
    assert find_entry(index, ["impact_analysis", "country_aggregation"]) == "b.y"
    assert find_entry({}, ["anything"]) is None


# -- simulated backend ------------------------------------------------------------------------

def test_simulated_llm_returns_fenced_json(world):
    llm = SimulatedLLM()
    prompt = querymind_prompt(
        "Identify the impact at a country level due to SeaMeWe-5 cable failure",
        default_registry().to_prompt_text(),
        build_data_context(world),
    )
    response = llm.complete(LLMRequest(agent="querymind", system="s", user=prompt))
    payload = extract_json(response.text)
    assert payload["intent"] == "cable_failure_impact"
    assert payload["sub_problems"]


def test_simulated_llm_unknown_agent():
    llm = SimulatedLLM()
    with pytest.raises(ValueError):
        llm.complete(LLMRequest(agent="mystery", system="s", user="u"))


def test_simulated_llm_fail_first_attempts(world):
    llm = SimulatedLLM(fail_first_attempts=1)
    prompt = querymind_prompt(
        "cable failure impact of FALCON",
        default_registry().to_prompt_text(),
        build_data_context(world),
    )
    request = LLMRequest(agent="querymind", system="s", user=prompt)
    payload = complete_json(llm, request, max_attempts=3)
    assert payload["intent"] == "cable_failure_impact"
    assert llm.call_count == 2
