"""Code generation and execution: templates, rendering, sandboxed runs."""

import ast

import pytest

from repro.core.artifacts import (
    CandidateWorkflow,
    GeneratedSolution,
    StepType,
    WorkflowDesign,
    WorkflowStep,
)
from repro.core.codegen import (
    QA_TEMPLATES,
    TRANSFORM_TEMPLATES,
    count_loc,
    generate_solution,
)
from repro.core.executor import execute_solution


def _design(steps, defaults=None):
    return WorkflowDesign(
        chosen=CandidateWorkflow(steps=steps),
        workflow_inputs={},
        param_defaults=defaults or {},
    )


def _plan(step_ids, qa=("sanity_bounds",)):
    return {"step_order": list(step_ids), "adapters": [], "qa_checks": list(qa),
            "result_keys": list(step_ids), "notes": ""}


def test_templates_are_valid_python():
    for name, code in {**TRANSFORM_TEMPLATES}.items():
        ast.parse(code), name
    for name, code in QA_TEMPLATES.items():
        ast.parse(code), name


def test_transform_templates_define_expected_function():
    for name, code in TRANSFORM_TEMPLATES.items():
        tree = ast.parse(code)
        functions = [n.name for n in tree.body if isinstance(n, ast.FunctionDef)]
        assert functions == [f"t_{name}"]


def test_count_loc_skips_blanks_and_comments():
    source = "x = 1\n\n# comment\ny = 2  # trailing\n"
    assert count_loc(source) == 2


def test_generate_simple_registry_workflow(catalog):
    steps = [
        WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                     target="nautilus.list_cables", inputs={}),
        WorkflowStep(id="s2", step_type=StepType.TRANSFORM, target="build_report",
                     inputs={"ranking": "step:s1", "dependencies": "step:s1",
                             "title": 'const:"test"'}),
    ]
    solution = generate_solution(_design(steps), _plan(["s1", "s2"]), "test query")
    outcome = execute_solution(solution, catalog)
    assert outcome.succeeded, outcome.error
    assert outcome.outputs["final"]["title"] == "test"
    assert outcome.quality_report["sanity_bounds"]["passed"]


def test_generate_foreach_workflow(catalog):
    steps = [
        WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                     target="xaminer.list_disasters",
                     inputs={"severe_only": "const:true"}),
        WorkflowStep(id="s2", step_type=StepType.TRANSFORM,
                     target="split_events_by_kind", inputs={"events": "step:s1"}),
        WorkflowStep(id="s3", step_type=StepType.REGISTRY,
                     target="xaminer.process_event",
                     inputs={"event_spec": "item",
                             "failure_probability": "const:1.0",
                             "seed": "const:0"},
                     foreach="step:s2.earthquake"),
    ]
    solution = generate_solution(_design(steps), _plan(["s1", "s2", "s3"]), "q")
    outcome = execute_solution(solution, catalog)
    assert outcome.succeeded, outcome.error
    reports = outcome.outputs["results"]["s3"]
    assert isinstance(reports, list) and reports
    assert all("failed_cable_ids" in r for r in reports)


def test_generate_unknown_transform_rejected():
    steps = [WorkflowStep(id="s1", step_type=StepType.TRANSFORM,
                          target="not_a_template", inputs={})]
    with pytest.raises(ValueError, match="no template"):
        generate_solution(_design(steps), _plan(["s1"]), "q")


def test_param_defaults_flow_into_run(catalog):
    steps = [
        WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                     target="nautilus.get_cable_info",
                     inputs={"cable_name": "workflow:cable_name"}),
    ]
    solution = generate_solution(
        _design(steps, defaults={"cable_name": "FALCON"}), _plan(["s1"], qa=()), "q"
    )
    outcome = execute_solution(solution, catalog)
    assert outcome.succeeded
    assert outcome.outputs["results"]["s1"]["name"] == "FALCON"
    # Explicit params override defaults.
    outcome2 = execute_solution(solution, catalog, params={"cable_name": "AAE-1"})
    assert outcome2.outputs["results"]["s1"]["name"] == "AAE-1"


def test_executor_captures_runtime_errors(catalog):
    solution = GeneratedSolution(
        source_code="def run(catalog, params=None):\n    raise RuntimeError('boom')\n",
    )
    outcome = execute_solution(solution, catalog)
    assert not outcome.succeeded
    assert "boom" in outcome.error


def test_executor_rejects_unloadable_module(catalog):
    solution = GeneratedSolution(source_code="this is not python")
    outcome = execute_solution(solution, catalog)
    assert not outcome.succeeded
    assert "failed to load" in outcome.error


def test_executor_rejects_missing_entrypoint(catalog):
    solution = GeneratedSolution(source_code="x = 1\n", entrypoint="run")
    outcome = execute_solution(solution, catalog)
    assert not outcome.succeeded
    assert "no callable" in outcome.error


def test_executor_rejects_wrong_shape(catalog):
    solution = GeneratedSolution(
        source_code="def run(catalog, params=None):\n    return 42\n"
    )
    outcome = execute_solution(solution, catalog)
    assert not outcome.succeeded
    assert "unexpected shape" in outcome.error


def test_generated_code_has_no_framework_imports(catalog):
    steps = [
        WorkflowStep(id="s1", step_type=StepType.REGISTRY,
                     target="nautilus.list_cables", inputs={}),
    ]
    solution = generate_solution(_design(steps), _plan(["s1"], qa=()), "q")
    assert "import repro" not in solution.source_code
    assert "from repro" not in solution.source_code


def test_builtins_dict_normalizes_module_form():
    import builtins as builtins_module

    from repro.core.executor import builtins_dict

    as_dict = builtins_dict(builtins_module)
    assert isinstance(as_dict, dict)
    assert as_dict["len"] is len
    assert as_dict["sorted"] is sorted


def test_builtins_dict_normalizes_dict_form():
    from repro.core.executor import builtins_dict

    original = {"len": len, "min": min}
    as_dict = builtins_dict(original)
    assert as_dict == original
    # A copy, not the same mapping — sandbox writes must not leak back.
    as_dict["min"] = None
    assert original["min"] is min


@pytest.mark.parametrize("form", ["module", "dict"])
def test_generated_code_can_call_builtins_under_both_forms(catalog, form):
    """Regression: the sandbox namespace must expose builtins as a dict
    regardless of whether the executor module saw ``__builtins__`` as the
    module (script-style import) or as a dict (package-style import)."""
    import builtins as builtins_module

    from repro.core import executor

    solution = GeneratedSolution(
        source_code=(
            "def run(catalog, params=None):\n"
            "    assert isinstance(__builtins__, dict)\n"
            "    values = sorted([len('ab'), max(1, 3), abs(-7)])\n"
            "    return {'results': values}\n"
        ),
    )
    forms = {"module": builtins_module, "dict": dict(vars(builtins_module))}
    original = executor.builtins_dict

    def patched():
        return original(forms[form])

    try:
        executor.builtins_dict = patched
        outcome = executor.execute_solution(solution, catalog)
    finally:
        executor.builtins_dict = original
    assert outcome.succeeded, outcome.error
    assert outcome.outputs["results"] == [2, 3, 7]
