"""Chaos testing: worker processes die at adversarial moments and the
serve plane must absorb it — retry-once provenance, no hung broker, no
leaked shared-memory segments, and the surviving pool still serves.

These are marked ``chaos``: CI runs them in their own lane
(``-m "chaos or slow"``) so the default tier-1 lane stays fast.
"""

import os
import random
import time

import pytest

from repro.serve import QueryBroker, ServeConfig, JobState
from repro.serve import transport
from repro.serve.backends import FAULT_PARAM
from repro.synth.world import WorldConfig, build_world

QUERY = "Identify the impact at a country level due to {} cable failure"


@pytest.fixture(scope="module")
def chaos_world():
    return build_world(WorldConfig(seed=3, tier1_count=6, tier2_per_region=2,
                                   edge_density=0.5))


def _leaked_segments():
    try:
        return [f for f in os.listdir("/dev/shm")
                if f.startswith(f"{transport.SEGMENT_PREFIX}-")]
    except FileNotFoundError:  # non-Linux: lifecycle covered by decode tests
        return []


def _slow_params(seconds: float) -> dict:
    """Fault-injection params: hold the worker busy so a kill lands mid-job."""
    return {FAULT_PARAM: {"sleep_s": seconds}}


@pytest.mark.chaos
def test_kill_worker_mid_campaign_retries_once_and_settles(chaos_world):
    """Hard-kill a worker while its jobs are in flight: every ticket must
    settle DONE (retried on a surviving slot), provenance must record the
    retries, and the broker must not hang."""
    cables = chaos_world.cable_names()
    broker = QueryBroker(
        chaos_world,
        config=ServeConfig(workers=2, backend="process", dispatch_batch=2),
    ).start()
    try:
        tickets = [
            broker.submit(QUERY.format(cables[i % len(cables)]),
                          params=_slow_params(0.8))
            for i in range(4)
        ]
        time.sleep(0.4)  # let the batch land in the workers' laps
        broker.backend.kill_worker(0)
        finished = broker.wait_all(tickets, timeout=300)
        assert all(job.state is JobState.DONE for job in finished), [
            (j.ticket, j.state.value, j.error) for j in finished
        ]
        retried = sum(broker.ledger.get(t).retries for t in tickets)
        assert retried >= 1, "the killed worker's in-flight jobs must retry"
        assert all(broker.ledger.get(t).retries <= 1 for t in tickets)
        stats = broker.stats()["backend"]
        assert stats["affinity"]["respawns"] >= 1
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


@pytest.mark.chaos
def test_seeded_random_kills_never_hang_the_broker(chaos_world):
    """A seeded chaos monkey kills a random worker at a random moment in
    each round; the broker must settle every ticket every round."""
    rng = random.Random(1337)
    cables = chaos_world.cable_names()
    broker = QueryBroker(
        chaos_world,
        config=ServeConfig(workers=2, backend="process",
                           cache_enabled=False, dispatch_batch=2),
    ).start()
    try:
        for round_no in range(2):
            tickets = [
                broker.submit(QUERY.format(rng.choice(cables)),
                              params=_slow_params(0.6))
                for _ in range(3)
            ]
            time.sleep(rng.uniform(0.1, 0.5))
            broker.backend.kill_worker(rng.randrange(2))
            finished = broker.wait_all(tickets, timeout=300)
            # Settled is the invariant; DONE unless the retry itself was
            # killed (a double-fault this round does not inject).
            assert all(job.state is JobState.DONE for job in finished), [
                (round_no, j.state.value, j.error) for j in finished
            ]
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


@pytest.mark.chaos
def test_kill_both_workers_sequentially_pool_recovers(chaos_world):
    """Kill every slot (one at a time, letting the monitor respawn): the
    pool must keep serving and end with a full complement of workers."""
    cable = chaos_world.cable_names()[0]
    broker = QueryBroker(
        chaos_world, config=ServeConfig(workers=2, backend="process")
    ).start()
    try:
        assert broker.result(broker.submit(QUERY.format(cable)), timeout=300)
        for index in range(2):
            broker.backend.kill_worker(index)
            ticket = broker.submit(QUERY.format(cable),
                                   params=_slow_params(0.1))
            job = broker.wait(ticket, timeout=300)
            assert job.state is JobState.DONE, job.error
        stats = broker.stats()["backend"]
        assert stats["affinity"]["respawns"] >= 2
        alive = [slot.process.is_alive() for slot in broker.backend._slots]
        assert all(alive)
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


@pytest.mark.chaos
def test_kill_during_forensic_replay_loop_still_closes(chaos_world):
    """Chaos inside the closed loop: a worker dies while a triggered
    forensic query is in flight; the case must still reach a verdict."""
    import threading

    from repro.live import ALERTS_TOPIC, EventBus, ForensicTrigger, compose_fingerprint
    from repro.live.clock import EpochState

    cable = chaos_world.cable_named(chaos_world.cable_names()[0])
    links = frozenset(l.id for l in chaos_world.links_on_cable(cable.id))
    broker = QueryBroker(
        chaos_world, config=ServeConfig(workers=2, backend="process")
    ).start()
    try:
        bus = EventBus()
        trigger = ForensicTrigger(bus, broker)
        state = EpochState(
            index=1, window_start=3600.0, window_end=7200.0,
            fingerprint=compose_fingerprint(chaos_world.fingerprint(), links),
            failed_link_ids=links, failed_cable_ids=(cable.id,),
            active_event_ids=(), changed=True,
        )
        bus.publish(ALERTS_TOPIC, {
            "detector": "t", "kind": "rtt_shift", "series_key": "DE->JP",
            "epoch": 1, "ts": 7200.0, "magnitude": 40.0, "detail": {},
        })
        opened = trigger.on_epoch(state)
        assert len(opened) == 1
        killer = threading.Timer(0.3, broker.backend.kill_worker, args=(0,))
        killer.start()
        try:
            joined = trigger.collect(timeout=300)
        finally:
            killer.cancel()
        assert joined[0].state == "done"
        assert joined[0].verdict in ("confirmed", "mismatch", "undetermined")
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


_RUNNER = """\
import sys

from repro.serve import QueryBroker, ServeConfig, run_campaign
from repro.serve.campaign import CampaignJob
from repro.synth.world import WorldConfig, build_world

QUERY = "Identify the impact at a country level due to {} cable failure"
world = build_world(WorldConfig(seed=3, tier1_count=6, tier2_per_region=2,
                                edge_density=0.5))
jobs = [CampaignJob(query=QUERY.format(cable), tag=cable)
        for cable in world.cable_names()]
broker = QueryBroker(world, config=ServeConfig(
    workers=1, journal_dir=sys.argv[1])).start()
run_campaign(broker, jobs, timeout=600)
broker.shutdown()
"""


def _campaign_digests(world, journal_dir, jobs):
    """Run the campaign against a journaled broker; return tag -> digest."""
    from repro.serve import run_campaign

    broker = QueryBroker(world, config=ServeConfig(
        workers=1, journal_dir=journal_dir)).start()
    try:
        report = run_campaign(broker, jobs, timeout=600)
        assert report.all_succeeded, report.outcomes
        digests = {
            row["tag"]: broker.wait(row["ticket"]).result.artifact_digest()
            for row in report.outcomes
        }
        return digests, report, broker.recovery
    finally:
        broker.shutdown()


@pytest.mark.chaos
def test_sigkill_broker_mid_campaign_resumes_exactly_once(chaos_world,
                                                          tmp_path):
    """The tentpole invariant: SIGKILL the *broker process* mid-campaign,
    restart on the same journal, and the resumed campaign must (a) produce
    aggregate artifact digests byte-identical to an uninterrupted run and
    (b) execute no journaled-complete job twice — exactly-once resume."""
    import signal
    import subprocess
    import sys

    from repro.serve.campaign import CampaignJob
    from repro.serve.journal import replay_directory, segment_paths

    # CI points JOURNAL_DUMP_DIR at a workspace directory and uploads the
    # surviving journal as a build artifact (postmortem evidence of the
    # kill, the resume, and the dedup).
    base = os.environ.get("JOURNAL_DUMP_DIR") or str(tmp_path)
    os.makedirs(base, exist_ok=True)
    wal = os.path.join(base, "wal-interrupted")
    runner = tmp_path / "runner.py"
    runner.write_text(_RUNNER)
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen([sys.executable, str(runner), wal], env=env)
    jobs = [CampaignJob(query=QUERY.format(cable), tag=cable)
            for cable in chaos_world.cable_names()]
    try:
        # Poll the journal (read-only: truncate=False — the victim still
        # owns the live segment) until the campaign is provably mid-flight.
        deadline = time.time() + 300
        while time.time() < deadline:
            if proc.poll() is not None:
                break
            if os.path.isdir(wal):
                state, _ = replay_directory(wal, truncate=False)
                if state.completions:
                    break
            time.sleep(0.02)
        killed_midway = proc.poll() is None
        if killed_midway:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)
    state, _ = replay_directory(wal, truncate=False)
    assert state.completions, "the victim never journaled a completion"
    if killed_midway:
        assert len(state.completions) < len(jobs), (
            "kill landed after the campaign finished; nothing to resume"
        )

    # Restart on the same journal and finish the campaign.
    digests, report, recovery = _campaign_digests(chaos_world, wal, jobs)
    assert recovery.completions >= 1
    # Every journaled completion re-joins without re-executing; pending
    # jobs the broker resubmitted at start() that finish before the
    # campaign's own submits re-join too, so >= not ==.
    assert report.replayed >= recovery.completions, (
        "a journaled completion was re-executed instead of re-joined"
    )

    # An uninterrupted control run must agree byte-for-byte.
    control, _, _ = _campaign_digests(
        chaos_world, os.path.join(base, "wal-clean"), jobs)
    assert digests == control

    # Exactly-once: across every surviving journal record, no job key has
    # more than one successful completion (no duplicate side effects).
    from repro.serve.journal import read_segment

    done_per_key = {}
    for _seq, path in segment_paths(wal):
        records, _ = read_segment(path, truncate=False)
        for record in records:
            if record.get("kind") == "complete" and \
                    record.get("status") == "done":
                key = record["key"]
                done_per_key[key] = done_per_key.get(key, 0) + 1
    assert done_per_key, "no completions journaled"
    duplicates = {k: n for k, n in done_per_key.items() if n > 1}
    assert not duplicates, duplicates
    assert _leaked_segments() == []


@pytest.mark.chaos
def test_crash_loop_trips_breaker_into_journaled_deadletter(chaos_world,
                                                            tmp_path):
    """A poison job that kills every worker it touches must stop killing
    the pool: after the crash-loop threshold its signature is quarantined
    into the journaled dead-letter queue, and the quarantine survives a
    broker restart — resubmitting the poison query costs zero workers."""
    wal = str(tmp_path / "wal")
    broker = QueryBroker(
        chaos_world,
        config=ServeConfig(workers=2, backend="process", dispatch_batch=1,
                           journal_dir=wal),
    ).start()
    try:
        # Distinct params so the journal's in-flight dedup doesn't collapse
        # the submissions into one job; the breaker keys on (world, query)
        # alone, so all four still charge the same signature.
        tickets = [
            broker.submit("poison probe",
                          params={FAULT_PARAM: "exit", "_probe": n})
            for n in range(4)
        ]
        finished = broker.wait_all(tickets, timeout=300)
        states = {job.state for job in finished}
        assert states <= {JobState.FAILED, JobState.QUARANTINED}, states
        assert JobState.QUARANTINED in states, (
            "the crash loop never tripped the circuit breaker"
        )
        assert broker.deadletter.contains("default", "poison probe")
        respawns_first_run = broker.stats()["backend"]["affinity"]["respawns"]
    finally:
        broker.shutdown()
    # Restart on the same journal: the circuit is still open, so the same
    # query short-circuits to quarantine without touching a worker.
    broker = QueryBroker(
        chaos_world,
        config=ServeConfig(workers=2, backend="process", journal_dir=wal),
    ).start()
    try:
        job = broker.wait(broker.submit("poison probe"), timeout=60)
        assert job.state is JobState.QUARANTINED
        assert broker.stats()["backend"]["affinity"]["respawns"] == 0, (
            "a quarantined signature killed a worker after restart"
        )
        assert respawns_first_run >= 3  # the deaths that tripped the breaker
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


@pytest.mark.chaos
def test_sigkill_leaves_a_flight_dump_with_last_spans(chaos_world, tmp_path):
    """The black box: a SIGKILLed worker's postmortem dump must exist,
    name the retried jobs, and still contain the dead worker's last spans
    (teed into the flight ring before the process died).

    CI points ``FLIGHT_DUMP_DIR`` at a workspace directory and uploads
    whatever lands there as build artifacts."""
    import json

    dump_dir = os.environ.get("FLIGHT_DUMP_DIR") or str(tmp_path)
    cables = chaos_world.cable_names()
    broker = QueryBroker(
        chaos_world,
        config=ServeConfig(workers=2, backend="process", dispatch_batch=2,
                           tracing=True, flight=True, flight_dir=dump_dir),
    ).start()
    try:
        pid0 = broker.backend._slots[0].process.pid
        # Warm up until the doomed worker has shipped at least one span
        # back over the reply pipe — that span must survive the SIGKILL.
        for attempt in range(20):
            ticket = broker.submit(QUERY.format(cables[attempt % len(cables)]))
            broker.wait(ticket, timeout=300)
            if any(r["pid"] == pid0 for r in broker.tracer.records()):
                break
        assert any(r["pid"] == pid0 for r in broker.tracer.records()), (
            "worker 0 never produced a span during warmup"
        )

        tickets = [
            broker.submit(QUERY.format(cables[i % len(cables)]),
                          params=_slow_params(0.8))
            for i in range(4)
        ]
        time.sleep(0.4)
        broker.backend.kill_worker(0)
        finished = broker.wait_all(tickets, timeout=300)
        assert all(job.state is JobState.DONE for job in finished)
        retried = [t for t in tickets if broker.ledger.get(t).retries == 1]
        assert retried, "the kill must have landed on at least one job"

        # Every retried job's ledger row points at a real postmortem.
        for ticket in retried:
            dump_path = broker.ledger.get(ticket).flight_dump
            assert dump_path and os.path.exists(dump_path), ticket
            doc = json.loads(open(dump_path).read())
            assert doc["reason"] == "worker_crashed"
            assert ticket in doc["extra"]["tickets"]
            # The dead worker's last shipped span is in the ring.
            assert any(r["kind"] == "span" and r["data"]["pid"] == pid0
                       for r in doc["records"]), dump_path
            assert doc["config"]["workers"] == 2
            assert doc["heartbeats"], "reply metadata heartbeats missing"
        # The SIGKILL respawn itself also dumped (monitor-loop trigger).
        reasons = set()
        for path in broker.flight.dump_paths():
            reasons.add(json.loads(open(path).read())["reason"])
        assert "worker_respawn" in reasons
        assert any(name.startswith("flight-") and name.endswith(".json")
                   for name in os.listdir(dump_dir))
    finally:
        broker.shutdown()
    assert _leaked_segments() == []
