"""Traceroute substrate: probes, paths, campaigns, series, anomalies."""

import pytest

from repro.traceroute.anomaly import cusum_change_point, detect_series_anomalies
from repro.traceroute.campaign import CampaignSpec, run_campaign_spec
from repro.traceroute.probes import build_probe_fleet, probes_in_region, targets_in_region
from repro.traceroute.rtt import PathResolver
from repro.traceroute.series import latency_series_from_rows
from repro.traceroute.api import detect_latency_anomalies, latency_series, paths_crossing_links, run_campaign
from repro.synth.geography import Region

DAY = 86_400.0


# -- probes ----------------------------------------------------------------------

def test_fleet_deterministic(world):
    a = build_probe_fleet(world)
    b = build_probe_fleet(world)
    assert [p.id for p in a] == [p.id for p in b]
    assert [p.coord for p in a] == [p.coord for p in b]


def test_fleet_covers_every_country(world):
    fleet = build_probe_fleet(world)
    countries = {p.country_code for p in fleet}
    assert countries == set(world.countries.keys())


def test_probes_attach_to_existing_ases(world):
    for probe in build_probe_fleet(world):
        assert probe.asn in world.ases
        assert world.ases[probe.asn].country_code == probe.country_code


def test_region_filters(world):
    fleet = build_probe_fleet(world)
    europe = probes_in_region(world, fleet, Region.EUROPE)
    assert europe
    assert all(world.country(p.country_code).region == Region.EUROPE for p in europe)
    targets = targets_in_region(world, Region.ASIA)
    assert targets
    assert all(world.ases[t].country_code for t in targets)


# -- path resolution -----------------------------------------------------------------

def test_resolver_basic_path(world):
    resolver = PathResolver(world)
    asns = sorted(world.ases)
    path = resolver.resolve(asns[0], asns[-1])
    assert path is not None
    assert path.as_path[0] == asns[0]
    assert path.as_path[-1] == asns[-1]
    assert len(path.link_ids) == len(path.as_path) - 1
    assert path.base_rtt_ms > 0


def test_resolver_failure_forces_reroute_or_loss(world):
    resolver = PathResolver(world)
    cable = world.cable_named("SeaMeWe-5")
    failed = frozenset(l.id for l in world.links_on_cable(cable.id))
    affected_link = world.links_on_cable(cable.id)[0]
    src, dst = affected_link.asn_a, affected_link.asn_b
    before = resolver.resolve(src, dst)
    after = resolver.resolve(src, dst, failed)
    assert before is not None
    if after is not None:
        assert not set(after.link_ids) & failed


def test_measured_rtt_noise_bounded(world):
    resolver = PathResolver(world)
    asns = sorted(world.ases)
    base = resolver.resolve(asns[0], asns[10])
    rtt, _ = resolver.measured_rtt_ms(asns[0], asns[10], ts=42.0)
    assert rtt is not None
    assert abs(rtt - base.base_rtt_ms) / base.base_rtt_ms <= 0.04


# -- campaign --------------------------------------------------------------------------

def test_campaign_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(Region.EUROPE, Region.ASIA, 10.0, 5.0)
    with pytest.raises(ValueError):
        CampaignSpec(Region.EUROPE, Region.ASIA, 0.0, 10.0, interval_s=0)


def test_campaign_produces_time_ordered_rows(world):
    spec = CampaignSpec(Region.EUROPE, Region.ASIA, 0.0, 6 * 3600.0,
                        interval_s=3600.0)
    measurements = run_campaign_spec(world, spec)
    timestamps = [m.ts for m in measurements]
    assert timestamps == sorted(timestamps)
    assert len({m.ts for m in measurements}) == 6


def test_campaign_incident_raises_latency(world, incident):
    rows = run_campaign(world, "europe", "asia", 0.0, 7 * DAY,
                        interval_s=21_600.0, incidents=[incident])
    pre = [r["rtt_ms"] for r in rows if r["rtt_ms"] and r["ts"] < incident.onset]
    post = [r["rtt_ms"] for r in rows if r["rtt_ms"] and r["ts"] >= incident.onset]
    assert sum(post) / len(post) > sum(pre) / len(pre)


# -- series ------------------------------------------------------------------------------

def test_series_grouping_modes(world):
    rows = run_campaign(world, "europe", "asia", 0.0, 4 * 3600.0)
    pair = latency_series_from_rows(rows, group_by="pair")
    aggregate = latency_series_from_rows(rows, group_by="aggregate")
    assert len(aggregate) == 1
    assert len(pair) > 10
    with pytest.raises(ValueError):
        latency_series_from_rows(rows, group_by="nope")


def test_series_bin_counts(world):
    rows = run_campaign(world, "europe", "asia", 0.0, 4 * 3600.0, interval_s=3600.0)
    series = latency_series(rows, group_by="aggregate")
    bins = series["all"]
    assert len(bins) == 4
    total = sum(b["sample_count"] + b["loss_count"] for b in bins)
    assert total == len(rows)


# -- anomaly -------------------------------------------------------------------------------

def test_cusum_finds_obvious_shift():
    values = [100.0] * 20 + [150.0] * 20
    idx = cusum_change_point(values)
    assert idx is not None
    assert 18 <= idx <= 22


def test_cusum_ignores_flat_series():
    assert cusum_change_point([100.0] * 30) is None


def test_anomalies_detected_with_incident(world, incident):
    rows = run_campaign(world, "europe", "asia", 0.0, 7 * DAY,
                        interval_s=3600.0, incidents=[incident])
    series = latency_series(rows, group_by="pair")
    anomalies = detect_latency_anomalies(series)
    assert anomalies
    significant = [a for a in anomalies if a["significant"]]
    assert significant
    for anomaly in significant[:5]:
        assert abs(anomaly["onset_ts"] - incident.onset) <= 6 * 3600.0


def test_no_anomalies_without_incident(world):
    rows = run_campaign(world, "europe", "asia", 0.0, 7 * DAY, interval_s=21_600.0)
    series = latency_series(rows, group_by="pair")
    anomalies = detect_latency_anomalies(series, min_increase_pct=10.0)
    assert [a for a in anomalies if a["significant"]] == []


def test_paths_crossing_links_filter(world):
    rows = run_campaign(world, "europe", "asia", 0.0, 2 * 3600.0)
    cable = world.cable_named("SeaMeWe-5")
    link_ids = [l.id for l in world.links_on_cable(cable.id)]
    crossing = paths_crossing_links(rows, link_ids)
    wanted = set(link_ids)
    assert all(wanted & set(row["link_ids"]) for row in crossing)


def test_probe_pairs_deterministic_and_cross_region(world):
    from repro.traceroute.api import probe_pairs

    pairs = probe_pairs(world, 10)
    assert pairs == probe_pairs(world, 10)
    assert len(pairs) == 10
    for pair in pairs:
        src_region = world.country(pair["src_country"]).region
        dst_region = world.country(pair["dst_country"]).region
        assert src_region != dst_region
        assert world.ases[pair["dst_asn"]].country_code == pair["dst_country"]
    # Several distinct corridors, not one repeated.
    assert len({p["corridor"] for p in pairs}) >= 4
    with pytest.raises(ValueError):
        probe_pairs(world, 0)
