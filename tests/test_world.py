"""World assembly: determinism, cross-layer invariants, lookups."""

import pytest

from repro.synth.iplinks import LinkKind
from repro.synth.world import WorldConfig, build_world, default_world


def test_determinism_same_seed(world):
    other = build_world(WorldConfig())
    assert [l.id for l in world.ip_links] == [l.id for l in other.ip_links]
    assert [l.ip_a for l in world.ip_links] == [l.ip_a for l in other.ip_links]
    assert [l.cable_id for l in world.ip_links] == [l.cable_id for l in other.ip_links]


def test_different_seeds_differ():
    a = build_world(WorldConfig(seed=1))
    b = build_world(WorldConfig(seed=2))
    assert [l.cable_id for l in a.ip_links] != [l.cable_id for l in b.ip_links]


def test_submarine_links_have_cables(world):
    for link in world.ip_links:
        if link.kind is LinkKind.SUBMARINE:
            assert link.cable_id is not None, link.id
            assert link.cable_id in world.cables
        else:
            assert link.cable_id is None, link.id


def test_link_kind_matches_geography(world):
    for link in world.ip_links:
        region_a = world.country(link.country_a).region
        region_b = world.country(link.country_b).region
        if link.kind is LinkKind.DOMESTIC:
            assert link.country_a == link.country_b
        elif link.kind is LinkKind.TERRESTRIAL:
            assert link.country_a != link.country_b
            assert region_a == region_b
        else:
            assert region_a != region_b


def test_link_index_consistency(world):
    for cable_id, links in world.links_by_cable.items():
        for link in links:
            assert link.cable_id == cable_id
    for link in world.ip_links:
        assert world.link_by_id[link.id] is link


def test_endpoint_ips_unique(world):
    ips = [l.ip_a for l in world.ip_links] + [l.ip_b for l in world.ip_links]
    assert len(ips) == len(set(ips))


def test_endpoint_ips_belong_to_as_prefix(world):
    import ipaddress

    for link in world.ip_links[:100]:
        prefix = world.prefixes[link.asn_a][0]
        assert ipaddress.ip_address(link.ip_a) in prefix.network


def test_prefixes_unique(world):
    cidrs = [p.cidr for p in world.all_prefixes()]
    assert len(cidrs) == len(set(cidrs))


def test_transit_ases_get_two_prefixes(world):
    for asn, asys in world.ases.items():
        expected = 2 if asys.tier <= 2 else 1
        assert len(world.prefixes[asn]) == expected


def test_cable_named_roundtrip(world):
    for name in world.cable_names():
        assert world.cable_named(name).name == name


def test_summary_counts(world):
    summary = world.summary()
    assert summary["ases"] == len(world.ases)
    assert summary["ip_links"] == len(world.ip_links)
    assert summary["submarine_links"] == len(world.submarine_links())
    assert summary["submarine_links"] > 50


def test_as_graph_connected(world):
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(world.ases.keys())
    for link in world.ip_links:
        graph.add_edge(link.asn_a, link.asn_b)
    assert nx.is_connected(graph)


def test_base_load_within_capacity(world):
    for link in world.ip_links:
        assert 0.0 < link.base_load < 1.0
        assert link.capacity_gbps > 0


def test_default_world_cached():
    assert default_world() is default_world()


def test_corridor_cables_carry_multiple_links(world):
    for name in ("SeaMeWe-5", "AAE-1"):
        cable = world.cable_named(name)
        assert len(world.links_on_cable(cable.id)) >= 5, name


def test_world_fingerprint_stable_and_config_sensitive(world):
    assert world.fingerprint() == world.fingerprint()
    assert build_world(WorldConfig()).fingerprint() == world.fingerprint()
    other = build_world(WorldConfig(seed=11))
    assert other.fingerprint() != world.fingerprint()
    assert len(world.fingerprint()) == 16
