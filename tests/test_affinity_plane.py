"""The affinity-aware zero-copy execution plane: transport lifecycle,
sticky routing under steal, crash retry, and epoch-shard retention."""

import os
import time

import pytest

from repro.live.clock import EpochState
from repro.live.standing import StandingQuery, StandingQueryManager
from repro.serve import (
    BrokerError,
    JobState,
    ProcessPoolBackend,
    QueryBroker,
    ServeConfig,
    WorldShard,
)
from repro.serve import transport
from repro.serve.backends import FAULT_PARAM
from repro.synth.world import WorldConfig, build_world

QUERY = "Identify the impact at a country level due to {} cable failure"


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig())


def _leaked_segments():
    try:
        return [f for f in os.listdir("/dev/shm")
                if f.startswith(f"{transport.SEGMENT_PREFIX}-")]
    except FileNotFoundError:  # non-Linux: lifecycle covered by decode tests
        return []


# -- transport ---------------------------------------------------------------


def test_transport_inline_roundtrip():
    obj = {"rows": list(range(50)), "blob": b"x" * 64}
    message = transport.encode(obj, shm_min_bytes=1 << 20)
    assert message[0] == "inline"
    assert transport.decode(message) == obj


def test_transport_shm_roundtrip_large_artifact():
    """A large artifact (out-of-band bytearray buffer) moves through one
    shared-memory segment and the decode consumes — unlinks — it."""
    obj = {"kind": "artifact", "payload": bytearray(b"\xab" * 300_000)}
    message = transport.encode(obj, shm_min_bytes=0)  # force the shm path
    assert message[0] == "shm"
    assert not _leaked_segments() or message[1] in _leaked_segments()
    out = transport.decode(message)
    assert out == obj
    assert message[1] not in _leaked_segments()
    # Double-decode must fail loudly, not resurrect freed memory.
    with pytest.raises(Exception):
        transport.decode(message)


def test_transport_release_unlinks_undecoded_segment():
    message = transport.encode({"x": bytes(200_000)}, shm_min_bytes=0)
    assert message[0] == "shm"
    transport.release(message)
    assert message[1] not in _leaked_segments()
    transport.release(message)  # idempotent


# -- end-to-end shared-memory lifecycle --------------------------------------


def test_campaign_over_shm_leaves_no_segments(world):
    """Every result forced through shared memory: byte-identical outcomes,
    zero segments left after the campaign and after shutdown."""
    queries = [QUERY.format(name) for name in world.cable_names()[:3]]
    broker = QueryBroker(
        world,
        config=ServeConfig(workers=2, backend="process", shm_min_bytes=1),
    ).start()
    try:
        tickets = [broker.submit(q) for q in queries]
        results = [broker.result(t, timeout=120) for t in tickets]
        assert all(r.execution.succeeded for r in results)
        stats = broker.stats()["backend"]
        assert stats["dispatch"]["shm_results"] == len(queries)
        assert stats["dispatch"]["inline_results"] == 0
        assert _leaked_segments() == []
    finally:
        broker.shutdown()
    assert _leaked_segments() == []


# -- affinity routing --------------------------------------------------------


def test_affinity_resubmission_sticks_and_hits_warm_cache(world):
    """Identical resubmissions route back to the bound worker: the second
    round is 100% affinity hits and lands on warm process-local caches."""
    queries = [QUERY.format(name) for name in world.cable_names()[:4]]
    broker = QueryBroker(
        world, config=ServeConfig(workers=2, backend="process")
    ).start()
    try:
        for q in queries:
            broker.result(broker.submit(q), timeout=120)
        first = broker.stats()["backend"]["affinity"]
        assert first["misses"] == len(queries) and first["hits"] == 0
        for q in queries:
            broker.result(broker.submit(q), timeout=120)
        second = broker.stats()["backend"]["affinity"]
        assert second["hits"] - first["hits"] == len(queries)
        merged = broker.stats()["backend"]["cache"]
        assert merged is not None and merged["hits"] > 0
    finally:
        broker.shutdown()


def test_affinity_disabled_never_binds(world):
    broker = QueryBroker(
        world,
        config=ServeConfig(workers=1, backend="process", affinity=False),
    ).start()
    try:
        query = QUERY.format(world.cable_names()[0])
        broker.result(broker.submit(query), timeout=120)
        broker.result(broker.submit(query), timeout=120)
        affinity = broker.stats()["backend"]["affinity"]
        assert not affinity["enabled"]
        assert affinity["hits"] == 0 and affinity["bindings"] == 0
    finally:
        broker.shutdown()


def test_steal_rebinds_hot_key_to_idle_worker(world):
    """A key bound to a backlogged worker is stolen by an idle one, and the
    binding (the future warm path) moves with it."""
    backend = ProcessPoolBackend(num_workers=2, steal_threshold=0,
                                 cache_entries=64)
    shard = WorldShard.build("w", world)
    backend.prepare(shard)
    backend.start()
    try:
        query = QUERY.format(world.cable_names()[0])
        backend.run(shard, query, None)  # binds the key to slot 0
        key = backend._affinity_key(shard, query, None)
        bound_before = backend._affinity[key][0]
        # Occupy the bound slot with a deliberately slow job...
        slow = backend._dispatch(
            shard, QUERY.format(world.cable_names()[1]),
            {FAULT_PARAM: {"sleep_s": 1.5}},
        )
        # ...so redispatching the bound key finds it backlogged and steals.
        fast = backend._dispatch(shard, query, None)
        assert fast.result().execution.succeeded
        stats = backend.stats()["affinity"]
        assert stats["steals"] == 1
        bound_after = backend._affinity[key][0]
        assert bound_after != bound_before
        assert slow.result().execution.succeeded
        # The stolen binding is sticky: the next dispatch is a hit on the thief.
        assert backend.run(shard, query, None).execution.succeeded
        assert backend._affinity[key][0] == bound_after
        assert backend.stats()["affinity"]["hits"] >= 1
    finally:
        backend.shutdown()


# -- crash retry -------------------------------------------------------------


def test_worker_death_retries_once_on_excluded_slot(world):
    """A job whose worker dies is resubmitted once, excluding the failed
    affinity slot, and succeeds elsewhere with retries recorded."""
    broker = QueryBroker(
        world, config=ServeConfig(workers=2, backend="process")
    ).start()
    try:
        # Least-loaded assignment on an idle pool starts at slot 0.
        ticket = broker.submit(
            QUERY.format(world.cable_names()[0]),
            params={FAULT_PARAM: {"exit_on_worker": 0}},
        )
        job = broker.wait(ticket, timeout=120)
        assert job.state is JobState.DONE
        assert broker.ledger.get(ticket).retries == 1
        assert broker.stats()["backend"]["affinity"]["respawns"] >= 1
        assert broker.ledger.summary()["retried"] == 1
    finally:
        broker.shutdown()


def test_worker_death_fails_after_single_retry(world):
    """A job that kills every worker it reaches fails after exactly one
    retry instead of crash-looping the pool."""
    broker = QueryBroker(
        world, config=ServeConfig(workers=1, backend="process")
    ).start()
    try:
        ticket = broker.submit(
            QUERY.format(world.cable_names()[0]),
            params={FAULT_PARAM: "exit"},
        )
        job = broker.wait(ticket, timeout=120)
        assert job.state is JobState.FAILED
        assert "WorkerCrashed" in job.error
        assert broker.ledger.get(ticket).retries == 1
        # The pool healed: the respawned worker serves the next job.
        good = broker.submit(QUERY.format(world.cable_names()[1]))
        assert broker.wait(good, timeout=120).state is JobState.DONE
    finally:
        broker.shutdown()


# -- world removal & epoch-shard retention -----------------------------------


def test_remove_world_guards_and_forgets(world):
    broker = QueryBroker(
        world, config=ServeConfig(workers=1, backend="process")
    ).start()
    try:
        broker.add_world("spare", world)
        broker.result(
            broker.submit(QUERY.format(world.cable_names()[0]),
                          world_key="spare"),
            timeout=120,
        )
        assert "spare" in broker.world_keys()
        with pytest.raises(BrokerError, match="unknown world key"):
            broker.remove_world("never-registered")
        broker.remove_world("spare")
        assert "spare" not in broker.world_keys()
        assert "spare" not in broker.backend._templates
        assert all(owner != "spare"
                   for _, _, owner in broker.backend._affinity.values())
        with pytest.raises(BrokerError):
            broker.submit("q", world_key="spare")
    finally:
        broker.shutdown()


def test_remove_world_refuses_active_jobs(world):
    broker = QueryBroker(world, config=ServeConfig(workers=1))
    # Not started: the submission stays queued, i.e. active.
    ticket = broker.submit(QUERY.format(world.cable_names()[0]))
    with pytest.raises(BrokerError, match="active job"):
        broker.remove_world("default")
    assert broker.status(ticket) is JobState.QUEUED
    broker.shutdown()


def _epoch(index, fingerprint, failed_cables):
    return EpochState(
        index=index,
        window_start=index * 3600.0,
        window_end=(index + 1) * 3600.0,
        fingerprint=fingerprint,
        failed_link_ids=frozenset(),
        failed_cable_ids=tuple(failed_cables),
        active_event_ids=(),
        changed=True,
    )


def test_epoch_shard_population_is_lru_bounded(world):
    """A long timeline over many distinct configurations keeps at most
    ``max_epoch_shards`` evolved shards registered, evicting LRU-first."""
    cables = list(world.cables)[:3]
    # Cache off so a re-encountered fingerprint re-materializes its shard
    # instead of being served from the standing-query artifact cache.
    with QueryBroker(
        world, config=ServeConfig(workers=1, cache_enabled=False)
    ) as broker:
        manager = StandingQueryManager(broker, max_epoch_shards=2)
        manager.register(StandingQuery(name="watch", query="Identify the "
                         "impact at a country level due to SeaMeWe-5 cable failure"))
        for i, cable_id in enumerate(cables):
            manager.on_epoch(_epoch(i, f"fp-{cable_id}", (cable_id,)))
            collected = manager.collect(timeout=120)
            assert all(r.state == "done" for r in collected)
        stats = manager.stats()
        assert stats["epoch_shards"] == 2
        assert stats["shards_evicted"] == 1
        epoch_keys = [k for k in broker.world_keys() if "@" in k]
        assert len(epoch_keys) == 2
        # The evicted shard was the least recently used: the first config.
        assert f"default@fp-{cables[0]}" not in broker.world_keys()
        # A re-encountered configuration rebuilds transparently.
        manager.on_epoch(_epoch(9, f"fp-{cables[0]}", (cables[0],)))
        assert all(r.state == "done" for r in manager.collect(timeout=120))
        assert manager.stats()["shards_evicted"] == 2
