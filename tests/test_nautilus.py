"""Nautilus substrate: geolocation, SoL, mapping, dependencies, API."""

import pytest

from repro.nautilus.dependencies import (
    cables_between_regions,
    cables_touching_country,
    extract_cable_dependencies,
)
from repro.nautilus.geolocation import Geolocator
from repro.nautilus.mapping import CrossLayerMapper, observed_link_rtt_ms
from repro.nautilus.sol import (
    FIBER_SPEED_KM_PER_MS,
    max_distance_km,
    min_rtt_ms,
    path_feasible,
    sol_compatible,
)
from repro.nautilus.api import (
    geolocate_ips,
    get_cable_dependencies,
    get_cable_info,
    get_landing_points,
    list_cables,
    map_ip_links_to_cables,
    sol_validate_link,
)
from repro.synth.geography import Region, haversine_km


# -- geolocation --------------------------------------------------------------

def test_geolocation_router_endpoints_exact_country(world):
    geo = Geolocator(world)
    for link in world.ip_links[:50]:
        assert geo.locate(link.ip_a).country_code == link.country_a
        assert geo.locate(link.ip_b).country_code == link.country_b


def test_geolocation_deterministic(world):
    geo = Geolocator(world)
    link = world.ip_links[0]
    first = geo.locate(link.ip_a)
    second = geo.locate(link.ip_a)
    assert first == second


def test_geolocation_noise_bounded(world):
    geo = Geolocator(world, uncertainty_km=40.0)
    for link in world.ip_links[:50]:
        result = geo.locate(link.ip_a)
        drift = haversine_km(result.coord, link.coord_a)
        assert drift <= 90.0  # 40 km in each axis, plus lat/lon interplay


def test_geolocation_unknown_ip_raises(world):
    geo = Geolocator(world)
    with pytest.raises(KeyError):
        geo.locate("203.0.113.1")


# -- speed of light -----------------------------------------------------------

def test_min_rtt_scales_linearly():
    assert min_rtt_ms(0) == 0
    assert min_rtt_ms(2000) == pytest.approx(2 * min_rtt_ms(1000))


def test_min_rtt_roundtrip_with_max_distance():
    rtt = min_rtt_ms(5000.0)
    assert max_distance_km(rtt) == pytest.approx(5000.0)


def test_fiber_slower_than_vacuum():
    assert FIBER_SPEED_KM_PER_MS < 299.8


def test_sol_compatible_rejects_impossible():
    # 1 ms RTT across 10,000 km is physically impossible.
    assert not sol_compatible(1.0, 10_000.0)
    assert sol_compatible(120.0, 10_000.0)


def test_path_feasible():
    assert path_feasible(100.0, 5000.0)
    assert not path_feasible(10.0, 5000.0)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        min_rtt_ms(-1)
    with pytest.raises(ValueError):
        max_distance_km(-1)


# -- mapping -------------------------------------------------------------------

def test_mapping_accuracy_with_rtt(world):
    mapper = CrossLayerMapper(world)
    assert mapper.accuracy_against_truth() >= 0.6


def test_truth_always_in_candidate_set(world):
    mapper = CrossLayerMapper(world)
    assert mapper.truth_in_candidates_rate() >= 0.9


def test_rtt_validation_beats_geometry_only(world):
    with_rtt = CrossLayerMapper(world).accuracy_against_truth()
    without = CrossLayerMapper(world, use_rtt=False).accuracy_against_truth()
    assert with_rtt > without


def test_non_submarine_links_map_to_none(world):
    mapper = CrossLayerMapper(world)
    link = next(l for l in world.ip_links if l.cable_id is None)
    mapping = mapper.map_link(link)
    assert mapping.cable_id is None
    assert mapping.confidence == 1.0


def test_mapping_confidences_normalised(world):
    mapper = CrossLayerMapper(world)
    for link in world.submarine_links()[:30]:
        mapping = mapper.map_link(link)
        assert 0.0 <= mapping.confidence <= 1.0
        scores = [s for _, s in mapping.candidates]
        assert scores == sorted(scores, reverse=True)


def test_observed_rtt_deterministic_and_physical(world):
    link = world.submarine_links()[0]
    rtt_1 = observed_link_rtt_ms(world, link)
    rtt_2 = observed_link_rtt_ms(world, link)
    assert rtt_1 == rtt_2
    distance = haversine_km(link.coord_a, link.coord_b)
    assert rtt_1 >= min_rtt_ms(distance) * 0.9  # jitter bounded


# -- dependencies ---------------------------------------------------------------

def test_ground_truth_dependencies_exact(world):
    cable = world.cable_named("SeaMeWe-5")
    deps = extract_cable_dependencies(world, cable.id, mappings=None)
    truth = {l.id for l in world.links_on_cable(cable.id)}
    assert set(deps.link_ids) == truth
    assert len(deps.ips) == 2 * len(deps.link_ids)


def test_inferred_dependencies_high_recall(world):
    cable = world.cable_named("SeaMeWe-5")
    mappings = CrossLayerMapper(world).map_all()
    deps = extract_cable_dependencies(world, cable.id, mappings)
    truth = {l.id for l in world.links_on_cable(cable.id)}
    recall = len(set(deps.link_ids) & truth) / len(truth)
    assert recall >= 0.8


def test_cables_touching_country(world):
    touching = cables_touching_country(world, "FR")
    assert "cable-seamewe-5" in touching
    assert "cable-paclight" not in touching


def test_cables_between_regions(world):
    corridor = cables_between_regions(world, Region.EUROPE, Region.ASIA)
    names = {world.cables[cid].name for cid in corridor}
    assert "SeaMeWe-5" in names
    assert "AAE-1" in names
    assert "Atlantica-1" not in names


# -- API -------------------------------------------------------------------------

def test_list_cables_rows(world):
    rows = list_cables(world)
    assert len(rows) == len(world.cables)
    names = {r["name"] for r in rows}
    assert "SeaMeWe-5" in names
    for row in rows:
        assert row["length_km"] > 0
        assert row["landing_countries"]


def test_get_cable_info_structure(world):
    info = get_cable_info(world, "SeaMeWe-5")
    assert info["name"] == "SeaMeWe-5"
    assert len(info["landing_points"]) == 14
    assert len(info["segments"]) == 13
    assert get_landing_points(world, "SeaMeWe-5") == info["landing_points"]


def test_map_ip_links_rows_enriched(world):
    rows = map_ip_links_to_cables(world)
    assert len(rows) == len(world.submarine_links())
    sample = next(iter(rows.values()))
    for key in ("cable_id", "cable_name", "confidence", "candidates",
                "asn_a", "asn_b", "country_a", "country_b", "capacity_gbps"):
        assert key in sample


def test_get_cable_dependencies_json(world):
    deps = get_cable_dependencies(world, "AAE-1")
    assert deps["cable_name"] == "AAE-1"
    assert deps["link_ids"]
    assert deps["total_capacity_gbps"] > 0


def test_geolocate_ips_api(world):
    link = world.ip_links[0]
    out = geolocate_ips(world, [link.ip_a, link.ip_b])
    assert out[link.ip_a]["country"] == link.country_a
    assert out[link.ip_b]["country"] == link.country_b


def test_sol_validate_link_api(world):
    link = world.submarine_links()[0]
    verdict = sol_validate_link(world, link.id, observed_rtt_ms=500.0)
    assert verdict["feasible"]
    impossible = sol_validate_link(world, link.id, observed_rtt_ms=0.001)
    assert impossible["min_rtt_ms"] >= 0
