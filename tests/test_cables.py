"""Cable substrate: blueprint materialisation and lookup."""

import pytest

from repro.synth.cables import (
    CABLE_BLUEPRINTS,
    build_cables,
    build_landing_points,
    cable_by_name,
)


@pytest.fixture(scope="module")
def landing_points():
    return build_landing_points()


@pytest.fixture(scope="module")
def cables(landing_points):
    return build_cables(landing_points)


def test_blueprint_names_unique():
    names = [b.name for b in CABLE_BLUEPRINTS]
    assert len(names) == len(set(names))


def test_every_blueprint_materialises(cables):
    assert len(cables) == len(CABLE_BLUEPRINTS)


def test_cables_have_at_least_two_landing_points(cables):
    for cable in cables.values():
        assert len(cable.landing_point_ids) >= 2, cable.name


def test_segment_count_matches_landing_chain(cables):
    for cable in cables.values():
        assert len(cable.segments) == len(cable.landing_point_ids) - 1


def test_segment_lengths_positive_with_slack(cables, landing_points):
    from repro.synth.geography import haversine_km

    for cable in cables.values():
        for seg in cable.segments:
            src = landing_points[seg.src_landing]
            dst = landing_points[seg.dst_landing]
            great_circle = haversine_km(src.coord, dst.coord)
            assert seg.length_km == pytest.approx(great_circle * 1.2)
            assert seg.length_km > 0


def test_cable_length_is_sum_of_segments(cables):
    for cable in cables.values():
        assert cable.length_km == pytest.approx(sum(s.length_km for s in cable.segments))


def test_seamewe5_lands_in_france_and_singapore(cables, landing_points):
    cable = cable_by_name(cables, "SeaMeWe-5")
    countries = cable.country_codes(landing_points)
    assert countries[0] == "FR"
    assert countries[-1] == "SG"
    assert len(cable.landing_point_ids) == 14


def test_cable_lookup_case_insensitive(cables):
    assert cable_by_name(cables, "seamewe-5").name == "SeaMeWe-5"
    assert cable_by_name(cables, "AAE-1").name == "AAE-1"


def test_cable_lookup_unknown_lists_known(cables):
    with pytest.raises(KeyError) as excinfo:
        cable_by_name(cables, "Nonexistent-9")
    assert "SeaMeWe-5" in str(excinfo.value)


def test_landing_point_ids_resolve(cables, landing_points):
    for cable in cables.values():
        for lp_id in cable.landing_point_ids:
            assert lp_id in landing_points


def test_segment_sampling_endpoints(cables, landing_points):
    cable = cable_by_name(cables, "FALCON")
    seg = cable.segments[0]
    src = landing_points[seg.src_landing]
    dst = landing_points[seg.dst_landing]
    points = seg.sample_points(src, dst, n=5)
    assert len(points) == 5
    assert points[0] == src.coord
    assert points[-1] == dst.coord


def test_segment_sampling_requires_two_points(cables, landing_points):
    cable = cable_by_name(cables, "FALCON")
    seg = cable.segments[0]
    src = landing_points[seg.src_landing]
    dst = landing_points[seg.dst_landing]
    with pytest.raises(ValueError):
        seg.sample_points(src, dst, n=1)
