"""Tool catalog: callable resolution, context injection, error surface."""

import pytest

from repro.core.catalog import (
    CatalogError,
    MeasurementContext,
    ToolCatalog,
    build_catalog,
    composite_placeholder,
    resolve_callable,
)
from repro.core.registry import default_registry


def test_resolve_callable_happy_path():
    func = resolve_callable("repro.nautilus.api:list_cables")
    assert callable(func)


def test_resolve_callable_bad_format():
    with pytest.raises(CatalogError):
        resolve_callable("no-colon-here")


def test_resolve_callable_missing_module():
    with pytest.raises(CatalogError):
        resolve_callable("repro.not_a_module:fn")


def test_resolve_callable_missing_attr():
    with pytest.raises(CatalogError):
        resolve_callable("repro.nautilus.api:not_a_function")


def test_catalog_call_injects_world(catalog, world):
    rows = catalog.call("nautilus.list_cables")
    assert len(rows) == len(world.cables)


def test_catalog_call_kwargs(catalog):
    info = catalog.call("nautilus.get_cable_info", cable_name="FALCON")
    assert info["name"] == "FALCON"


def test_catalog_call_bad_kwargs(catalog):
    with pytest.raises(CatalogError):
        catalog.call("nautilus.get_cable_info", wrong_param=1)


def test_catalog_injects_incidents(world, registry, incident):
    quiet = build_catalog(registry, world)
    noisy = build_catalog(registry, world, incidents=[incident])
    rows_quiet = quiet.call("bgp.fetch_updates", window_start=0.0,
                            window_end=604_800.0)
    rows_noisy = noisy.call("bgp.fetch_updates", window_start=0.0,
                            window_end=604_800.0)
    assert len(rows_noisy) > len(rows_quiet)


def test_caller_can_override_incidents(world, registry, incident):
    noisy = build_catalog(registry, world, incidents=[incident])
    rows = noisy.call("bgp.fetch_updates", window_start=0.0,
                      window_end=604_800.0, incidents=[])
    baseline = build_catalog(registry, world).call(
        "bgp.fetch_updates", window_start=0.0, window_end=604_800.0
    )
    assert len(rows) == len(baseline)


def test_composite_placeholder_raises(world):
    with pytest.raises(CatalogError):
        composite_placeholder(world)


def test_context_defaults():
    context = MeasurementContext(world=None)
    assert context.incidents == []
