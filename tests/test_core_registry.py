"""Registry: entry validation, lookup, subsetting, prompt rendering."""

import json

import pytest

from repro.core.registry import Registry, RegistryEntry, RegistryError, default_registry


def _entry(name="test.fn", capabilities=("thing",)):
    return RegistryEntry(
        name=name,
        framework=name.split(".", 1)[0],
        summary="a test entry",
        capabilities=tuple(capabilities),
        inputs=(("x", "int"),),
        outputs=(("y", "int"),),
        callable_ref="repro.nautilus.api:list_cables",
    )


def test_entry_name_must_match_framework():
    with pytest.raises(ValueError):
        RegistryEntry(name="a.b", framework="c", summary="s",
                      capabilities=("x",), inputs=(), outputs=())


def test_entry_requires_dotted_name():
    with pytest.raises(ValueError):
        RegistryEntry(name="plain", framework="plain", summary="s",
                      capabilities=("x",), inputs=(), outputs=())


def test_entry_requires_capabilities():
    with pytest.raises(ValueError):
        RegistryEntry(name="a.b", framework="a", summary="s",
                      capabilities=(), inputs=(), outputs=())


def test_add_and_get():
    registry = Registry()
    entry = _entry()
    registry.add(entry)
    assert registry.get("test.fn") is entry
    assert "test.fn" in registry
    assert len(registry) == 1


def test_duplicate_add_rejected():
    registry = Registry()
    registry.add(_entry())
    with pytest.raises(ValueError):
        registry.add(_entry())


def test_unknown_lookup_lists_known():
    registry = Registry()
    registry.add(_entry())
    with pytest.raises(RegistryError) as excinfo:
        registry.get("missing.fn")
    assert "test.fn" in str(excinfo.value)


def test_find_by_capability_ranked():
    registry = Registry()
    registry.add(_entry("a.one", ("mapping",)))
    registry.add(_entry("a.two", ("mapping", "impact")))
    found = registry.find_by_capability(["mapping", "impact"])
    assert [e.name for e in found] == ["a.two", "a.one"]
    assert registry.find_by_capability(["nonexistent"]) == []


def test_subset_by_framework():
    full = default_registry()
    nautilus_only = full.subset(frameworks=["nautilus"])
    assert nautilus_only.frameworks() == ["nautilus"]
    assert len(nautilus_only) < len(full)


def test_subset_by_names():
    full = default_registry()
    two = full.subset(names=["xaminer.process_event", "nautilus.list_cables"])
    assert sorted(two.names()) == ["nautilus.list_cables", "xaminer.process_event"]


def test_prompt_text_is_json():
    rows = json.loads(default_registry().to_prompt_text())
    assert isinstance(rows, list)
    names = {r["name"] for r in rows}
    assert "xaminer.process_event" in names


def test_prompt_text_grows_linearly():
    full = default_registry()
    sizes = []
    for count in (5, 10, 15):
        subset = full.subset(names=full.names()[:count])
        sizes.append(len(subset.to_prompt_text()))
    per_entry_1 = (sizes[1] - sizes[0]) / 5
    per_entry_2 = (sizes[2] - sizes[1]) / 5
    assert 0.4 < per_entry_1 / per_entry_2 < 2.5  # roughly linear growth


def test_default_registry_resolvable(world):
    from repro.core.catalog import MeasurementContext, ToolCatalog

    catalog = ToolCatalog(default_registry(), MeasurementContext(world=world))
    assert catalog.validate() == []


def test_clone_independent():
    registry = default_registry()
    clone = registry.clone()
    clone.add(_entry())
    assert "test.fn" in clone
    assert "test.fn" not in registry
