"""Evaluation harness: overlap scoring, similarity metrics, reporting."""

import pytest

from repro.core.artifacts import CandidateWorkflow, StepType, WorkflowDesign, WorkflowStep
from repro.evalharness.similarity import ranking_similarity, relative_error, top_k_overlap
from repro.evalharness.stagekinds import (
    TARGET_STAGE_KINDS,
    design_stage_kinds,
    jaccard,
    overlap_report,
)
from repro.evalharness.report import _fmt, failed_checks, format_report_table
from repro.evalharness.casestudies import CaseStudyReport


def _design(*targets):
    steps = [
        WorkflowStep(id=f"s{i}", step_type=StepType.TRANSFORM, target=t, inputs={})
        for i, t in enumerate(targets)
    ]
    return WorkflowDesign(chosen=CandidateWorkflow(steps=steps))


def test_every_known_target_has_stage_kind():
    from repro.core.codegen import TRANSFORM_TEMPLATES
    from repro.core.registry import default_registry

    for name in TRANSFORM_TEMPLATES:
        assert name in TARGET_STAGE_KINDS, name
    for name in default_registry().names():
        assert name in TARGET_STAGE_KINDS, name


def test_design_stage_kinds_excludes_plumbing():
    design = _design("build_report", "aggregate_impact_by_country")
    kinds = design_stage_kinds(design)
    assert kinds == {"country_aggregation"}
    with_plumbing = design_stage_kinds(design, include_plumbing=True)
    assert "report" in with_plumbing


def test_jaccard_edges():
    assert jaccard(set(), set()) == 1.0
    assert jaccard({"a"}, set()) == 0.0
    assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)


def test_overlap_report_fields():
    design = _design("aggregate_impact_by_country", "rank_countries_by_impact")
    expert = {"stage_kinds": ["country_aggregation", "impact_ranking",
                              "dependency_resolution"]}
    report = overlap_report(design, expert)
    assert report["shared"] == ["country_aggregation", "impact_ranking"]
    assert report["expert_only"] == ["dependency_resolution"]
    assert report["expert_coverage"] == pytest.approx(2 / 3, abs=1e-3)


def test_ranking_similarity_identical():
    ranking = [{"country": c, "score": s} for c, s in
               [("A", 0.9), ("B", 0.5), ("C", 0.1), ("D", 0.05)]]
    result = ranking_similarity(ranking, list(ranking))
    assert result["spearman"] == pytest.approx(1.0)
    assert result["key_jaccard"] == 1.0


def test_ranking_similarity_inverted():
    a = [{"country": c, "score": s} for c, s in
         [("A", 0.9), ("B", 0.5), ("C", 0.2), ("D", 0.1)]]
    b = [{"country": c, "score": 1.0 - s["score"]} for c, s in
         zip("ABCD", a)]
    result = ranking_similarity(a, b)
    assert result["spearman"] == pytest.approx(-1.0)


def test_ranking_similarity_too_few_common():
    a = [{"country": "A", "score": 1.0}]
    b = [{"country": "A", "score": 1.0}]
    assert ranking_similarity(a, b)["spearman"] is None


def test_top_k_overlap():
    a = [{"country": c} for c in "ABCDE"]
    b = [{"country": c} for c in "AXBYZ"]
    assert top_k_overlap(a, b, k=5) == pytest.approx(2 / 5)
    assert top_k_overlap([], [], k=3) == 1.0
    with pytest.raises(ValueError):
        top_k_overlap(a, b, k=0)


def test_relative_error():
    assert relative_error(0.0, 0.0) == 0.0
    assert relative_error(10.0, 5.0) == pytest.approx(0.5)


def test_format_report_table_and_failed_checks():
    report = CaseStudyReport(case=9, query="test query")
    report.metrics = {"value_metric": 1.2345, "list_metric": ["a", "b"]}
    report.checks = {"good": True, "bad": False}
    table = format_report_table([report])
    assert "case 9" in table
    assert "1.2345" in table
    assert "FAIL" in table
    assert failed_checks([report]) == ["case9:bad"]
    assert _fmt([]) == "(none)"
