"""Xaminer substrate: events, failures, impact, aggregation, risk, API."""

import pytest

from repro.xaminer.aggregate import as_impact_embeddings, country_impact_embeddings, rank_countries
from repro.xaminer.events import event_footprint
from repro.xaminer.failures import expected_failure_weights, links_for_cables, simulate_failures
from repro.xaminer.impact import compute_impact, weighted_impact
from repro.xaminer.risk import country_risk_profile, most_exposed_countries
from repro.xaminer.api import (
    combine_impact_reports,
    country_impact,
    list_disasters,
    process_event,
    risk_profile,
)
from repro.synth.scenarios import DisasterEvent, DisasterKind, cable_cut_event, default_disaster_catalog


# -- footprints ----------------------------------------------------------------

def test_cable_cut_footprint_full_exposure(world):
    event = cable_cut_event(world, "SeaMeWe-5")
    footprint = event_footprint(world, event)
    assert footprint.cable_exposure == {"cable-seamewe-5": 1.0}


def test_geo_footprint_taiwan_quake_hits_apg(world):
    event = DisasterEvent(id="eq-test", kind=DisasterKind.EARTHQUAKE,
                          name="test", center=(21.9, 120.7), radius_km=450.0,
                          magnitude=7.4)
    footprint = event_footprint(world, event)
    assert "cable-apg" in footprint.cable_exposure
    assert all(0 < e <= 1 for e in footprint.cable_exposure.values())


def test_geo_footprint_requires_center(world):
    event = DisasterEvent(id="bad", kind=DisasterKind.EARTHQUAKE, name="bad")
    with pytest.raises(ValueError):
        event_footprint(world, event)


def test_footprint_radius_monotone(world):
    small = DisasterEvent(id="s", kind=DisasterKind.HURRICANE, name="s",
                          center=(22.5, -80.0), radius_km=300.0, magnitude=4)
    large = DisasterEvent(id="l", kind=DisasterKind.HURRICANE, name="l",
                          center=(22.5, -80.0), radius_km=900.0, magnitude=4)
    exposure_small = event_footprint(world, small).cable_exposure
    exposure_large = event_footprint(world, large).cable_exposure
    assert set(exposure_small) <= set(exposure_large)
    for cable_id, value in exposure_small.items():
        assert exposure_large[cable_id] >= value


# -- failures --------------------------------------------------------------------

def test_failure_probability_extremes(world):
    event = cable_cut_event(world, "SeaMeWe-5")
    footprint = event_footprint(world, event)
    none = simulate_failures(world, footprint, failure_probability=0.0)
    assert none.failed_cable_ids == []
    certain = simulate_failures(world, footprint, failure_probability=1.0)
    assert certain.failed_cable_ids == ["cable-seamewe-5"]
    assert set(certain.failed_link_ids) == {
        l.id for l in world.links_on_cable("cable-seamewe-5")
    }


def test_failure_sampling_deterministic_per_seed(world):
    event = DisasterEvent(id="eq", kind=DisasterKind.EARTHQUAKE, name="e",
                          center=(33.2, 136.5), radius_km=500.0, magnitude=7.9)
    footprint = event_footprint(world, event)
    a = simulate_failures(world, footprint, 0.5, seed=1)
    b = simulate_failures(world, footprint, 0.5, seed=1)
    assert a.failed_cable_ids == b.failed_cable_ids


def test_failure_seed_mixed_with_event_id(world):
    # Two events with identical exposure sets must draw independently.
    quake_a = DisasterEvent(id="eq-a", kind=DisasterKind.EARTHQUAKE, name="a",
                            center=(33.2, 136.5), radius_km=500.0, magnitude=7.9)
    quake_b = DisasterEvent(id="eq-b", kind=DisasterKind.EARTHQUAKE, name="b",
                            center=(33.2, 136.5), radius_km=500.0, magnitude=7.9)
    results = set()
    for event in (quake_a, quake_b):
        footprint = event_footprint(world, event)
        sample = simulate_failures(world, footprint, 0.5, seed=0)
        results.add(tuple(sample.failed_cable_ids))
    # Identical draws for both would make the tuple set size 1 always; with
    # id-mixed seeds the draws are decorrelated (they may still coincide,
    # but not for this particular seed/footprint combination).
    assert len(results) == 2


def test_invalid_probability_rejected(world):
    event = cable_cut_event(world, "FALCON")
    footprint = event_footprint(world, event)
    with pytest.raises(ValueError):
        simulate_failures(world, footprint, 1.5)
    with pytest.raises(ValueError):
        expected_failure_weights(footprint, -0.1)


def test_links_for_cables_sorted_unique(world):
    links = links_for_cables(world, ["cable-seamewe-5", "cable-aae-1"])
    assert links == sorted(set(links))


# -- impact ---------------------------------------------------------------------

def test_impact_empty_failure_set(world):
    report = compute_impact(world, [])
    assert report.total_capacity_lost_gbps == 0
    assert report.isolated_asns == []
    assert all(c.impact_score == 0 for c in report.by_country.values())


def test_impact_counts_match_failed_links(world):
    failed = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    report = compute_impact(world, failed)
    total_links_counted = sum(c.links_affected for c in report.by_country.values())
    assert total_links_counted == 2 * len(failed)  # both endpoints count
    assert report.total_capacity_lost_gbps == pytest.approx(
        sum(world.link_by_id[l].capacity_gbps for l in failed)
    )


def test_impact_unknown_link_raises(world):
    with pytest.raises(KeyError):
        compute_impact(world, ["link-99999"])


def test_impact_monotone_in_failure_set(world):
    small = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    big = small + [l.id for l in world.links_on_cable("cable-aae-1")]
    report_small = compute_impact(world, small)
    report_big = compute_impact(world, big)
    for code in world.countries:
        assert (report_big.by_country[code].links_affected
                >= report_small.by_country[code].links_affected)
    assert report_big.total_capacity_lost_gbps >= report_small.total_capacity_lost_gbps


def test_weighted_impact_scales_with_weight(world):
    half = weighted_impact(world, {"cable-seamewe-5": 0.5})
    full = weighted_impact(world, {"cable-seamewe-5": 1.0})
    assert half.total_capacity_lost_gbps == pytest.approx(
        full.total_capacity_lost_gbps * 0.5
    )


def test_impact_scores_bounded(world):
    failed = [l.id for l in world.links_on_cable("cable-aae-1")]
    report = compute_impact(world, failed)
    for impact in report.by_country.values():
        assert 0.0 <= impact.impact_score <= 1.0


# -- aggregation -------------------------------------------------------------------

def test_embeddings_fraction_consistency(world):
    failed = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    report = compute_impact(world, failed)
    embeddings = country_impact_embeddings(report)
    for code, emb in embeddings.items():
        impact = report.by_country[code]
        assert emb.score == pytest.approx(impact.impact_score)


def test_rank_countries_sorted_and_nonzero(world):
    failed = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    ranking = rank_countries(compute_impact(world, failed))
    scores = [row["score"] for row in ranking]
    assert scores == sorted(scores, reverse=True)
    assert all(s > 0 for s in scores)


def test_as_embeddings_fractions(world):
    failed = [l.id for l in world.links_on_cable("cable-aae-1")]
    report = compute_impact(world, failed)
    rows = as_impact_embeddings(world, report)
    for row in rows:
        assert 0 <= row["fraction"] <= 1
        assert row["links_affected"] <= row["links_total"]


# -- risk ------------------------------------------------------------------------

def test_risk_profile_shares_sum_to_one(world):
    profile = country_risk_profile(world, "SG")
    shares = sum(
        cap / profile["submarine_capacity_gbps"]
        for cap in profile["capacity_by_cable"].values()
    )
    assert shares == pytest.approx(1.0, abs=1e-6)
    assert 0 < profile["herfindahl"] <= 1


def test_risk_profile_unknown_country(world):
    with pytest.raises(KeyError):
        country_risk_profile(world, "ZZ")


def test_most_exposed_sorted(world):
    rows = most_exposed_countries(world, top=5)
    shares = [r["dominant_share"] for r in rows]
    assert shares == sorted(shares, reverse=True)


# -- API -------------------------------------------------------------------------

def test_process_event_cable_cut(world):
    report = process_event(world, {"kind": "cable_cut",
                                   "cable_names": ["SeaMeWe-5"]})
    assert report["failed_cable_ids"] == ["cable-seamewe-5"]
    assert report["country_ranking"]
    assert report["total_capacity_lost_gbps"] > 0


def test_process_event_accepts_dataclass(world):
    event = default_disaster_catalog()[0]
    report = process_event(world, event, failure_probability=1.0)
    assert report["event"]["id"] == event.id


def test_process_event_probability_zero_no_failures(world):
    event = default_disaster_catalog()[0]
    report = process_event(world, event, failure_probability=0.0)
    assert report["failed_cable_ids"] == []
    assert report["country_ranking"] == []


def test_list_disasters_severe_filter(world):
    all_events = list_disasters(world)
    severe = list_disasters(world, severe_only=True)
    assert len(severe) < len(all_events)
    assert all(e["severe"] for e in severe)


def test_combine_impact_reports(world):
    r1 = process_event(world, {"kind": "cable_cut", "cable_names": ["FALCON"]})
    r2 = process_event(world, {"kind": "cable_cut", "cable_names": ["AAE-1"]})
    combined = combine_impact_reports([r1, r2])
    assert combined["events_combined"] == 2
    assert set(combined["failed_cable_ids"]) == {"cable-falcon", "cable-aae-1"}
    assert combined["total_capacity_lost_gbps"] == pytest.approx(
        r1["total_capacity_lost_gbps"] + r2["total_capacity_lost_gbps"]
    )


def test_country_impact_api(world):
    failed = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    ranking = country_impact(world, failed)
    assert ranking and all("country" in row for row in ranking)


def test_risk_profile_api_global(world):
    rows = risk_profile(world)
    assert isinstance(rows, list) and rows
    single = risk_profile(world, "FR")
    assert single["country"] == "FR"
