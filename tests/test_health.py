"""The self-observing health plane: SLO engine, flight recorder, httpd.

Covers the :class:`SloEngine` window math and multi-window burn-rate rule
under a fake clock, breach/recovery events on the bus, the
:class:`FlightRecorder` ring/dump lifecycle, the :class:`ObsServer`
endpoints over live components, the serve-plane wiring (crash retries
carry dump paths into the ledger), and — marked ``slow`` — the
acceptance path: ``/healthz`` flips from 200 to non-200 within one
evaluation window of an induced worker crash loop during a live replay.
"""

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.live import EventBus, LiveConfig, run_live_replay
from repro.obs import (
    HEALTH_TOPIC,
    FlightRecorder,
    MetricsRegistry,
    ObsServer,
    SloEngine,
    SloSpec,
    Tracer,
    default_slo_specs,
    load_slo_specs,
)
from repro.serve import JobState, QueryBroker, ServeConfig
from repro.serve.backends import FAULT_PARAM


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds


def _engine(registry, specs, clock, **kwargs) -> SloEngine:
    return SloEngine(registry, specs=specs, clock=clock, **kwargs)


def _get(url: str):
    """(status, parsed-or-text body) for a GET, treating HTTP errors as data."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            body = resp.read().decode()
            status = resp.status
    except urllib.error.HTTPError as err:
        body = err.read().decode()
        status = err.code
    try:
        return status, json.loads(body)
    except ValueError:
        return status, body


# -- SloSpec validation ------------------------------------------------------


def test_spec_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="m", objective=1.0, kind="nope")
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="m", objective=1.0, comparison="==")
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="m", objective=1.0, severity="warn")
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="m", objective=1.0, kind="ratio")  # no denominator
    with pytest.raises(ValueError):
        SloSpec(name="x", metric="m", objective=1.0, windows_s=(60.0, 30.0))


def test_spec_round_trips_through_dict_and_json(tmp_path):
    spec = SloSpec(name="fail", metric="jobs_total", labels={"state": "failed"},
                   total_metric="jobs_total", kind="ratio", objective=0.1,
                   severity="page", windows_s=(5.0, 20.0), burn_rate=2.0)
    assert SloSpec.from_dict(spec.to_dict()) == spec

    path = tmp_path / "slos.json"
    path.write_text(json.dumps({"slos": [spec.to_dict()]}))
    loaded = load_slo_specs(str(path))
    assert loaded == [spec]
    # A bare list works too.
    path.write_text(json.dumps([spec.to_dict()]))
    assert load_slo_specs(str(path)) == [spec]


def test_default_specs_are_valid_and_cover_the_planes():
    names = {s.name for s in default_slo_specs()}
    assert {"job_failure_ratio", "worker_crash_rate", "queue_wait_p95_band0",
            "alert_verdict_latency_p95", "warm_cache_hit_rate"} <= names


# -- window math -------------------------------------------------------------


def test_no_data_is_healthy_not_breached():
    registry = MetricsRegistry()
    clock = FakeClock()
    engine = _engine(registry, [SloSpec(name="g", metric="depth",
                                        objective=1.0, kind="gauge",
                                        windows_s=(2.0, 5.0))], clock)
    statuses = engine.evaluate()
    assert statuses[0].healthy and not statuses[0].has_data
    assert engine.verdict()["healthy"]


def test_gauge_objective_breaches_in_both_windows_only():
    registry = MetricsRegistry()
    clock = FakeClock()
    spec = SloSpec(name="depth", metric="queue_depth", objective=5.0,
                   kind="gauge", windows_s=(2.0, 11.0))
    engine = _engine(registry, [spec], clock)
    gauge = registry.gauge("queue_depth")
    # Long healthy history, then one spike: the short window's mean is
    # violated but the long window's mean stays under — no breach
    # (anti-flap).
    for _ in range(12):
        gauge.set(1.0)
        engine.evaluate()
        clock.tick()
    gauge.set(30.0)
    status = {s.spec.name: s for s in engine.evaluate()}["depth"]
    assert status.healthy, (status.value_short, status.value_long)
    assert status.value_short > 5.0 >= status.value_long
    clock.tick()
    # Sustained spike: both windows violated -> breach.
    for _ in range(15):
        gauge.set(30.0)
        engine.evaluate()
        clock.tick()
    status = {s.spec.name: s for s in engine.evaluate()}["depth"]
    assert not status.healthy and status.has_data
    assert status.value_short > 5.0 and status.value_long > 5.0


def test_rate_and_ratio_windows_use_counter_deltas():
    registry = MetricsRegistry()
    clock = FakeClock()
    specs = [
        SloSpec(name="rate", metric="events_total", objective=2.0,
                kind="rate", windows_s=(3.0, 6.0)),
        SloSpec(name="ratio", metric="events_total",
                labels={"state": "bad"}, total_metric="events_total",
                kind="ratio", objective=0.25, windows_s=(3.0, 6.0)),
    ]
    engine = _engine(registry, specs, clock)
    for _ in range(10):
        registry.counter("events_total", {"state": "good"}).inc(1)
        registry.counter("events_total", {"state": "bad"}).inc(3)
        engine.evaluate()
        clock.tick()
    by_name = {s.spec.name: s for s in engine.evaluate()}
    # 4 events/s > 2/s and 3 bad of 4 = 0.75 > 0.25.
    assert not by_name["rate"].healthy
    assert by_name["rate"].value_short == pytest.approx(4.0, rel=0.35)
    assert not by_name["ratio"].healthy
    assert by_name["ratio"].value_short == pytest.approx(0.75, abs=0.01)


def test_burn_rate_scales_the_ratio_threshold():
    registry = MetricsRegistry()
    clock = FakeClock()
    spec = SloSpec(name="r", metric="bad_total", total_metric="all_total",
                   kind="ratio", objective=0.2, burn_rate=3.0,
                   windows_s=(2.0, 4.0))
    engine = _engine(registry, [spec], clock)
    # 40% failure: over the objective (0.2) but under objective*burn (0.6).
    for _ in range(8):
        registry.counter("bad_total").inc(2)
        registry.counter("all_total").inc(5)
        engine.evaluate()
        clock.tick()
    assert {s.spec.name: s for s in engine.evaluate()}["r"].healthy


def test_percentile_estimates_from_histogram_bucket_deltas():
    registry = MetricsRegistry()
    clock = FakeClock()
    spec = SloSpec(name="p95", metric="wait_seconds", kind="percentile",
                   percentile=0.95, objective=0.5, windows_s=(3.0, 8.0))
    engine = _engine(registry, [spec], clock)
    hist = registry.histogram("wait_seconds", buckets=(0.1, 0.5, 2.0))
    for _ in range(8):
        for _ in range(20):
            hist.observe(0.05)  # all fast: p95 estimate = 0.1 <= 0.5
        engine.evaluate()
        clock.tick()
    assert {s.spec.name: s for s in engine.evaluate()}["p95"].healthy
    for _ in range(8):
        for _ in range(20):
            hist.observe(1.5)  # now slow: p95 lands in the 2.0 bucket
        engine.evaluate()
        clock.tick()
    status = {s.spec.name: s for s in engine.evaluate()}["p95"]
    assert not status.healthy
    assert status.value_short == pytest.approx(2.0)


def test_label_subset_matching_sums_across_series():
    registry = MetricsRegistry()
    clock = FakeClock()
    # No labels on the spec: both states aggregate into the denominator.
    spec = SloSpec(name="agg", metric="jobs_total", objective=10.0,
                   kind="rate", windows_s=(2.0, 4.0))
    engine = _engine(registry, [spec], clock)
    for _ in range(6):
        registry.counter("jobs_total", {"state": "done"}).inc(2)
        registry.counter("jobs_total", {"state": "failed"}).inc(1)
        engine.evaluate()
        clock.tick()
    status = {s.spec.name: s for s in engine.evaluate()}["agg"]
    assert status.has_data
    # Short window spans the last 2 fake-clock seconds and the final
    # sample adds nothing: one labelled round (2 done + 1 failed) over
    # 2 s = 1.5/s — both states summed into one series.
    assert status.value_short == pytest.approx(1.5)


# -- transitions: events, metrics, flight ------------------------------------


def test_breach_and_recovery_publish_health_events():
    registry = MetricsRegistry()
    clock = FakeClock()
    bus = EventBus(metrics=registry)
    sub = bus.subscribe(HEALTH_TOPIC, "test")
    spec = SloSpec(name="g", metric="depth", objective=1.0, kind="gauge",
                   windows_s=(2.0, 4.0), severity="ticket")
    engine = _engine(registry, [spec], clock, bus=bus)
    gauge = registry.gauge("depth")
    for _ in range(6):
        gauge.set(9.0)
        engine.evaluate()
        clock.tick()
    events = sub.drain()
    assert [e["kind"] for e in events] == ["slo_breach"]
    assert events[0]["slo"] == "g" and events[0]["severity"] == "ticket"
    assert registry.counter("slo_breaches_total",
                            {"slo": "g", "severity": "ticket"}).value == 1.0
    assert registry.gauge("slo_healthy").value == 0.0
    # Repeated breached evaluations do not re-publish (transition-only).
    gauge.set(9.0)
    engine.evaluate()
    assert sub.drain() == []
    for _ in range(6):
        gauge.set(0.0)
        engine.evaluate()
        clock.tick()
    recovered = sub.drain()
    assert [e["kind"] for e in recovered] == ["slo_recovered"]
    assert engine.verdict()["healthy"]
    assert registry.gauge("slo_healthy").value == 1.0


def test_page_breach_dumps_the_flight_recorder(tmp_path):
    registry = MetricsRegistry()
    clock = FakeClock()
    flight = FlightRecorder(dump_dir=str(tmp_path), registry=registry)
    spec = SloSpec(name="pager", metric="depth", objective=1.0, kind="gauge",
                   windows_s=(2.0, 4.0), severity="page")
    engine = _engine(registry, [spec], clock, flight=flight)
    gauge = registry.gauge("depth")
    for _ in range(6):
        gauge.set(7.0)
        engine.evaluate()
        clock.tick()
    paths = flight.dump_paths()
    assert len(paths) == 1
    doc = json.loads(open(paths[0]).read())
    assert doc["reason"] == "slo_page"
    assert doc["extra"]["slos"] == ["pager"]
    assert any(r["kind"] == "slo_page" for r in doc["records"])


# -- flight recorder ---------------------------------------------------------


def test_flight_ring_is_bounded_and_dump_is_self_contained(tmp_path):
    registry = MetricsRegistry()
    registry.counter("jobs_total").inc(3)
    flight = FlightRecorder(dump_dir=str(tmp_path), capacity=16,
                            registry=registry, config={"workers": 2},
                            git_sha="abc123")
    for i in range(40):
        flight.record("tick", {"i": i})
    flight.heartbeat("worker-0", pid=42)
    flight.heartbeat("worker-0", pid=42)
    flight.add_source("fake", lambda: {"depth": 7})
    flight.add_source("dying", lambda: 1 / 0)
    path = flight.dump("unit test!", extra={"note": "hi"})
    assert os.path.basename(path).startswith("flight-")
    assert "unit-test" in path and not os.path.exists(path + ".tmp")
    doc = json.loads(open(path).read())
    assert doc["git_sha"] == "abc123"
    assert doc["config"] == {"workers": 2}
    assert doc["extra"] == {"note": "hi"}
    # Ring kept only the newest `capacity` records.
    assert len(doc["records"]) == 16
    assert doc["records"][-1]["data"]["i"] == 39
    assert doc["heartbeats"]["worker-0"]["beats"] == 2
    assert doc["sources"]["fake"] == {"depth": 7}
    assert "ZeroDivisionError" in doc["sources"]["dying"]["error"]
    assert doc["metrics"]["counters"]["jobs_total"] == 3.0
    stats = flight.stats()
    assert stats["dumps"] == 1 and stats["records_total"] == 40


def test_flight_prunes_old_dumps(tmp_path):
    flight = FlightRecorder(dump_dir=str(tmp_path), max_dumps=3)
    paths = [flight.dump(f"r{i}") for i in range(5)]
    kept = flight.dump_paths()
    assert kept == paths[2:]
    assert all(os.path.exists(p) for p in kept)
    assert not any(os.path.exists(p) for p in paths[:2])
    assert sorted(os.listdir(tmp_path)) == sorted(os.path.basename(p)
                                                  for p in kept)


def test_flight_tees_tracer_spans_and_drains_bus_topics(tmp_path):
    registry = MetricsRegistry()
    flight = FlightRecorder(dump_dir=str(tmp_path), registry=registry)
    tracer = Tracer(label="test")
    tracer.add_listener(flight.ingest_spans)
    tracer.add_span("job", duration_s=0.1, ticket="job-1")
    bus = EventBus(metrics=registry)
    flight.attach_bus(bus, ("alerts", HEALTH_TOPIC))
    bus.publish("alerts", {"kind": "rtt_shift"})
    bus.publish(HEALTH_TOPIC, {"kind": "slo_breach"})
    assert flight.poll() == 2
    kinds = [r["kind"] for r in json.loads(
        open(flight.dump("check")).read())["records"]]
    assert "span" in kinds
    assert "bus:alerts" in kinds and f"bus:{HEALTH_TOPIC}" in kinds


# -- httpd -------------------------------------------------------------------


def test_obs_server_endpoints_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("jobs_total", {"state": "done"}).inc(2)
    clock = FakeClock()
    flight = FlightRecorder(dump_dir=str(tmp_path), registry=registry)
    engine = _engine(registry, [SloSpec(name="g", metric="depth",
                                        objective=1.0, kind="gauge",
                                        windows_s=(2.0, 4.0))], clock)
    with ObsServer(port=0, registry=registry, health=engine,
                   flight=flight) as server:
        assert server.port != 0

        status, text = _get(server.url("/metrics"))
        assert status == 200
        assert 'jobs_total{state="done"} 2' in text

        status, verdict = _get(server.url("/healthz"))
        assert status == 200 and verdict["healthy"] and verdict["engine"]
        assert {s["name"] for s in verdict["slos"]} == {"g"}

        status, payload = _get(server.url("/debug/flight"))
        assert status == 200
        assert os.path.exists(payload["path"])
        assert payload["dump"]["reason"] == "debug_http"

        status, payload = _get(server.url("/debug/broker"))
        assert status == 503  # no broker attached

        status, payload = _get(server.url("/nope"))
        assert status == 404 and "/healthz" in payload["endpoints"]


def test_obs_server_healthz_returns_503_on_breach():
    registry = MetricsRegistry()
    clock = FakeClock()
    spec = SloSpec(name="g", metric="depth", objective=1.0, kind="gauge",
                   windows_s=(2.0, 4.0))
    engine = _engine(registry, [spec], clock)
    gauge = registry.gauge("depth")
    for _ in range(6):
        gauge.set(9.0)
        engine.evaluate()
        clock.tick()
    with ObsServer(port=0, registry=registry, health=engine) as server:
        status, verdict = _get(server.url("/healthz"))
        assert status == 503 and not verdict["healthy"]
        breached = [s for s in verdict["slos"] if not s["healthy"]]
        assert [s["name"] for s in breached] == ["g"]


def test_obs_server_without_components_degrades_cleanly():
    with ObsServer(port=0) as server:
        assert _get(server.url("/metrics"))[0] == 404
        status, verdict = _get(server.url("/healthz"))
        assert status == 200 and verdict == {"healthy": True, "engine": False,
                                             "slos": []}
        assert _get(server.url("/debug/flight"))[0] == 503


def test_obs_server_debug_broker_serves_scheduler_depths(small_world):
    broker = QueryBroker(small_world, config=ServeConfig(workers=1)).start()
    try:
        with ObsServer(port=0, registry=broker.metrics,
                       broker=broker) as server:
            status, stats = _get(server.url("/debug/broker"))
            assert status == 200
            assert "queued_by_priority" in stats["scheduler"]
            assert stats["workers"] == 1
    finally:
        broker.shutdown()


# -- serve-plane wiring ------------------------------------------------------


def test_broker_builds_recorder_and_stats_expose_it(small_world, tmp_path):
    broker = QueryBroker(
        small_world,
        config=ServeConfig(workers=1, flight=True, flight_dir=str(tmp_path),
                           tracing=True),
    ).start()
    try:
        ticket = broker.submit(
            "Identify the impact at a country level due to "
            f"{small_world.cable_names()[0]} cable failure")
        assert broker.wait(ticket, timeout=300).state is JobState.DONE
        obs = broker.stats()["obs"]
        assert obs["flight"]["dump_dir"] == str(tmp_path)
        # Spans teed from the tracer and claimer heartbeats both landed.
        assert obs["flight"]["records_total"] > 0
        assert obs["flight"]["heartbeats"] >= 1
        doc = json.loads(open(broker.flight.dump("test")).read())
        assert any(r["kind"] == "span" for r in doc["records"])
        assert doc["config"]["workers"] == 1
        assert doc["sources"]["broker"]["submitted"] == 1
    finally:
        broker.shutdown()


def test_ledger_rows_without_crashes_have_empty_flight_dump(small_world):
    broker = QueryBroker(small_world, config=ServeConfig(workers=1)).start()
    try:
        ticket = broker.submit(
            "Identify the impact at a country level due to "
            f"{small_world.cable_names()[0]} cable failure")
        broker.wait(ticket, timeout=300)
        assert broker.ledger.get(ticket).flight_dump == ""
        assert broker.ledger.get(ticket).to_dict()["flight_dump"] == ""
    finally:
        broker.shutdown()


# -- the acceptance path: /healthz during a live replay ----------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.mark.slow
def test_live_healthz_flips_on_induced_crash_loop(small_world, tmp_path):
    """During ``run_live_replay`` with ``obs_port``, ``/healthz`` answers
    200 while the replay is healthy and non-200 within one evaluation
    window of an induced worker crash loop (every submitted job kills its
    worker; the retry crashes too, so the failure-ratio SLO pages)."""
    port = _free_port()
    broker = QueryBroker(
        small_world,
        config=ServeConfig(workers=2, backend="process", cache_enabled=False,
                           dispatch_batch=1, flight=True,
                           flight_dir=str(tmp_path)),
    ).start()
    # Short windows so the breach is observable seconds after the crashes,
    # not minutes: the acceptance bound is "within one evaluation window".
    spec = SloSpec(name="job_failure_ratio", metric="broker_jobs_finished_total",
                   labels={"state": "failed"},
                   total_metric="broker_jobs_finished_total", kind="ratio",
                   objective=0.1, severity="page", windows_s=(0.5, 3.0))
    config = LiveConfig(epochs=300, pace_s=0.1, obs_port=port,
                        slo_specs=[spec])
    report_box = {}

    def replay() -> None:
        report_box["report"] = run_live_replay(
            world=small_world, config=config, standing_queries=[],
            broker=broker,
        )

    thread = threading.Thread(target=replay, daemon=True)
    thread.start()
    try:
        # Phase 1: healthy. Wait for the server, then demand a clean 200.
        deadline = time.time() + 60
        status = None
        while time.time() < deadline:
            try:
                status, verdict = _get(f"http://127.0.0.1:{port}/healthz")
                break
            except (urllib.error.URLError, ConnectionError):
                time.sleep(0.05)
        assert status == 200, f"healthy replay answered {status}: {verdict}"
        assert verdict["healthy"] and verdict["engine"]

        # Phase 2: induce the crash loop. Both attempts of every job kill
        # their worker, so all four settle FAILED and the ratio hits 1.0.
        # Distinct queries, or the crash-loop circuit breaker would
        # quarantine the repeated signature instead of letting it fail.
        tickets = [
            broker.submit(f"crash probe {n}", params={FAULT_PARAM: "exit"})
            for n in range(4)
        ]
        for ticket in tickets:
            job = broker.wait(ticket, timeout=300)
            assert job.state is JobState.FAILED
        deadline = time.time() + 30
        saw_breach = False
        while time.time() < deadline:
            status, verdict = _get(f"http://127.0.0.1:{port}/healthz")
            if status == 503:
                saw_breach = True
                breached = [s["name"] for s in verdict["slos"]
                            if not s["healthy"]]
                assert breached == ["job_failure_ratio"]
                break
            time.sleep(0.05)
        assert saw_breach, "/healthz never went non-200 after the crash loop"
        # The page-severity breach also dumped a postmortem.
        assert any("slo-page" in os.path.basename(p)
                   for p in broker.flight.dump_paths())
    finally:
        thread.join(timeout=300)
    assert thread.is_alive() is False
    report = report_box["report"]
    assert report.health["breaches_total"] >= 1
    assert report.flight_dumps == broker.flight.dump_paths()
    broker.shutdown()
