"""R1 — Incremental BGP re-convergence vs full SPF recomputation.

Three sections over the full disaster catalog replayed as a multi-event
epoch timeline (fires and heals, overlapping failed-link sets):

1. **Timeline evaluation** (headline) — every epoch the BGP feed consults
   the current failure state's route table (churn against the baseline,
   re-convergence deltas on change).  ``full`` pays a from-scratch SPF
   sweep per evaluation; ``incremental`` is the shipped hot path: the
   LRU-bounded route cache plus affected-frontier recompute on first
   sight of a state (only peers whose cached-ancestor routes crossed a
   newly severed adjacency re-run SPF; the rest share structurally).
2. **Cold convergence** — first-sight computation only, one evaluation per
   distinct failure set, no cache effects: how much the frontier diffing
   alone saves over a full sweep.
3. **Serve burst** — the serve-path pattern: repeated forensic queries
   (``generate_updates`` with the same incident) against a fresh collector
   per call (the old behaviour) vs the shared per-world collector whose
   incremental tables survive across queries.

Every incremental table is verified equal to its full-recompute reference
before any timing is trusted.  Standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_routing.py

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental_routing.py -s
"""

from __future__ import annotations

import argparse
import gc
import json
import time

from repro.bgp.collector import BGPCollectorSim, CollectorConfig
from repro.live.clock import WorldTimeline, timeline_from_catalog
from repro.synth.scenarios import make_latency_incident
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MIN_TIMELINE_SPEEDUP = 3.0  # incremental+LRU vs full SPF, per-epoch evaluation
#: Cold first-sight convergence must never be meaningfully slower than a
#: full sweep.  It is rarely much faster on the default catalog either: the
#: severe events are *globally* disruptive, so nearly every vantage point's
#: tree crosses a severed adjacency and the frontier covers most peers —
#: the frontier pays off on localized failures, cache revisits and the
#: no-adjacency-died case, which the timeline section exercises.
MIN_COLD_SPEEDUP = 0.9
#: Shared incremental collector vs fresh per query.  Was 1.5 when a fresh
#: collector paid the legacy SPF for its tables; the int-indexed engine cut
#: that rebuild cost ~6x, so the gap sharing can win narrowed (speedup
#: compression) — the floor tracks what sharing still saves, not the old
#: engine's slowness.
MIN_SERVE_SPEEDUP = 1.3
#: Raw engine floor: the int-indexed batched SPF (converge_full) vs the
#: legacy per-AS dict walk (routes_under_full), cold, no cache effects.
MIN_ENGINE_SPEEDUP = 5.0

SECONDS_PER_DAY = 86_400.0


def timeline_failure_sets(world, epochs: int, overlap_epochs: int):
    """Per-epoch failed-link sets for the catalog timeline (multi-event:
    outage durations long enough that adjacent disasters overlap)."""
    events = timeline_from_catalog(world, duration_epochs=overlap_epochs)
    timeline = WorldTimeline(world, events)
    return [state.failed_link_ids for state in timeline.run(epochs)]


def _time_pass(fn, world, **config_kwargs) -> float:
    """One timed pass over a fresh collector (no cross-pass cache leakage).

    GC is collected before and paused during the pass (as ``timeit`` does):
    by the later sections the process holds every earlier section's live
    objects, and generational collections triggered mid-pass would tax
    allocation-heavy passes in proportion to *unrelated* heap population.
    """
    sim = BGPCollectorSim(world, CollectorConfig(**config_kwargs))
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        fn(sim)
        return time.perf_counter() - started
    finally:
        gc.enable()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=240,
                        help="timeline length; the catalog spans ~217 epochs")
    parser.add_argument("--overlap-epochs", type=int, default=36,
                        help="outage duration per event (bigger = more overlap)")
    parser.add_argument("--serve-queries", type=int, default=8,
                        help="repeated forensic queries in the serve section")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing passes; the best is reported")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--out", default="BENCH_incremental_routing.json",
                        help="write the result summary here ('' disables)")
    args = parser.parse_args(argv)

    world = build_world(WorldConfig(seed=7))
    failure_sets = timeline_failure_sets(world, args.epochs, args.overlap_epochs)
    distinct = list(dict.fromkeys(failure_sets))
    transitions = sum(
        1 for prev, fs in zip([None] + failure_sets[:-1], failure_sets)
        if fs != prev
    )
    print(f"\n=== incremental routing — {args.epochs} epochs, "
          f"{transitions} transitions, {len(distinct)} distinct "
          f"failure sets (sizes {sorted({len(d) for d in distinct})}) ===")

    # Correctness first: every incremental table must equal its reference.
    verifier = BGPCollectorSim(world)
    reference = BGPCollectorSim(world)
    for fs in distinct:
        full = reference.routes_under_full(fs)
        assert verifier.routes_under(fs) == full, (
            f"incremental table diverged for failure set of {len(fs)} links"
        )
        assert verifier.converge_full(fs) == full, (
            f"fast engine diverged for failure set of {len(fs)} links"
        )
    print(f"  verified: incremental == engine == full for all "
          f"{len(distinct)} sets")

    # 1. Timeline evaluation: one route-table consultation per epoch.
    t_full = min(
        _time_pass(lambda sim: [sim.routes_under_full(fs) for fs in failure_sets],
                   world)
        for _ in range(args.repeats)
    )
    t_inc = min(
        _time_pass(lambda sim: [sim.routes_under(fs) for fs in failure_sets],
                   world)
        for _ in range(args.repeats)
    )
    timeline_speedup = t_full / t_inc
    epochs_per_sec = args.epochs / t_inc
    print(f"  timeline ({args.epochs} evaluations): full SPF "
          f"{t_full * 1000:7.1f} ms vs incremental+LRU {t_inc * 1000:7.1f} ms "
          f"-> {timeline_speedup:.1f}x, {epochs_per_sec:,.0f} epochs/s")

    # 2. Cold convergence: first sight of each distinct set, no cache wins.
    t_full_cold = min(
        _time_pass(lambda sim: [sim.routes_under_full(fs) for fs in distinct],
                   world)
        for _ in range(args.repeats)
    )
    t_inc_cold = min(
        _time_pass(lambda sim: [sim.routes_under(fs) for fs in distinct], world)
        for _ in range(args.repeats)
    )
    cold_speedup = t_full_cold / t_inc_cold
    print(f"  cold distinct sets: full {t_full_cold * 1000:.1f} ms vs "
          f"incremental {t_inc_cold * 1000:.1f} ms -> {cold_speedup:.1f}x")

    # 2b. Raw engine: legacy per-AS dict SPF (routes_under_full) vs the
    # int-indexed batched SPF (converge_full), cold, no caching on either
    # side — the per-failure-set price of a from-scratch convergence.
    t_engine = min(
        _time_pass(lambda sim: [sim.converge_full(fs) for fs in distinct],
                   world)
        for _ in range(args.repeats)
    )
    engine_speedup = t_full_cold / t_engine
    full_convergence_ms = t_engine * 1000 / len(distinct)
    print(f"  engine cold sweep: legacy {t_full_cold * 1000:.1f} ms vs "
          f"int-indexed {t_engine * 1000:.1f} ms -> {engine_speedup:.1f}x "
          f"({full_convergence_ms:.2f} ms per full convergence)")

    # 3. Serve burst: repeated forensic queries about the same incident.
    incident = make_latency_incident(world, "SeaMeWe-5")
    window = (0.0, 7 * SECONDS_PER_DAY)

    def fresh_per_query(_sim):
        for _ in range(args.serve_queries):
            BGPCollectorSim(world).generate_updates(*window, [incident])

    def shared_collector_pass(sim):
        for _ in range(args.serve_queries):
            sim.generate_updates(*window, [incident])

    t_serve_fresh = min(
        _time_pass(fresh_per_query, world) for _ in range(args.repeats)
    )
    t_serve_shared = min(
        _time_pass(shared_collector_pass, world) for _ in range(args.repeats)
    )
    serve_speedup = t_serve_fresh / t_serve_shared
    print(f"  serve burst ({args.serve_queries} forensic queries): fresh "
          f"{t_serve_fresh * 1000:.1f} ms vs shared {t_serve_shared * 1000:.1f} ms "
          f"-> {serve_speedup:.1f}x")

    # Economics pass: replay the timeline once more with a delta stream
    # riding along (as the live BGP feed does), then read the counters.
    stats_sim = BGPCollectorSim(world)
    with stats_sim.delta_stream() as stream:
        previous = None
        for fs in failure_sets:
            stats_sim.routes_under(fs)
            if fs != previous:
                stream.advance(fs)
                previous = fs
        stream_stats = stream.stats()
    info = stats_sim.cache_info()
    pairs_touched = info["pairs_repaired"] + info["pairs_shared"]
    repair_fraction = (
        info["pairs_repaired"] / pairs_touched if pairs_touched else 0.0
    )
    print(f"  frontier economics: {info['peers_recomputed']} peer tables "
          f"recomputed, {info['peers_shared']} shared, "
          f"{info['shared_full_tables']} tables shared wholesale, "
          f"{info['hits']} cache hits / {info['misses']} misses, "
          f"{info['entries']}/{info['max_entries']} entries retained")
    print(f"  repair economics: {info['pairs_repaired']} route pairs "
          f"repaired vs {info['pairs_shared']} shared "
          f"({repair_fraction:.1%} repaired; frontier peak "
          f"{info['repair_frontier_peak']} pairs)")
    print(f"  delta stream: {stream_stats['deltas_emitted']} deltas, "
          f"{stream_stats['routes_emitted']} routes, "
          f"{stream_stats['bytes_emitted'] / 1024:.1f} KiB "
          f"(vs {len(verifier.routes_under(frozenset()))} rows per full table)")

    if args.out:
        summary = {
            "benchmark": "incremental_routing",
            "epochs": args.epochs,
            "transitions": transitions,
            "distinct_failure_sets": len(distinct),
            "full_ms": round(t_full * 1000, 2),
            "incremental_ms": round(t_inc * 1000, 2),
            "timeline_speedup": round(timeline_speedup, 2),
            "cold_speedup": round(cold_speedup, 2),
            "serve_speedup": round(serve_speedup, 2),
            "engine_speedup": round(engine_speedup, 2),
            "full_convergence_ms": round(full_convergence_ms, 3),
            "epochs_per_sec": round(epochs_per_sec, 1),
            "repair_fraction": round(repair_fraction, 4),
            "delta_stream": stream_stats,
            "route_cache": info,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        assert timeline_speedup >= MIN_TIMELINE_SPEEDUP, (
            f"timeline speedup {timeline_speedup:.2f}x below {MIN_TIMELINE_SPEEDUP}x"
        )
        assert cold_speedup >= MIN_COLD_SPEEDUP, (
            f"cold speedup {cold_speedup:.2f}x below {MIN_COLD_SPEEDUP}x"
        )
        assert serve_speedup >= MIN_SERVE_SPEEDUP, (
            f"serve speedup {serve_speedup:.2f}x below {MIN_SERVE_SPEEDUP}x"
        )
        assert engine_speedup >= MIN_ENGINE_SPEEDUP, (
            f"engine speedup {engine_speedup:.2f}x below {MIN_ENGINE_SPEEDUP}x"
        )
        print(f"  thresholds met: >={MIN_TIMELINE_SPEEDUP}x timeline, "
              f">={MIN_COLD_SPEEDUP}x cold, >={MIN_SERVE_SPEEDUP}x serve, "
              f">={MIN_ENGINE_SPEEDUP}x engine")
    return 0


def test_incremental_routing_smoke(tmp_path):
    """Pytest entry point: thresholds must hold on the default timeline."""
    assert main([
        "--repeats", "2",
        "--out", str(tmp_path / "BENCH_incremental_routing.json"),
    ]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
