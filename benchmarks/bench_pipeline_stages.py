"""F1 — Figure 1: the four-agent architecture trace.

Verifies the agent ordering and artifact hand-offs of Figure 1 on every
case-study query, and times the full pipeline per query class.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.evalharness.casestudies import CASE_QUERIES
from repro.synth.scenarios import make_latency_incident

EXPECTED_AGENTS = ["querymind", "workflowscout", "solutionweaver",
                   "executor", "registrycurator"]

EXPECTED_ARTIFACTS = ["ProblemAnalysis", "WorkflowDesign", "GeneratedSolution",
                      "ExecutionOutcome", "CuratorReport"]


@pytest.mark.parametrize("case", [1, 2, 3, 4])
def test_figure1_stage_trace(world, benchmark, case):
    incidents = [make_latency_incident(world, "SeaMeWe-5")] if case == 4 else []
    registry = (default_registry().subset(frameworks=["nautilus"])
                if case == 1 else default_registry())

    def run():
        system = ArachNet.for_world(world, registry=registry.clone(),
                                    incidents=incidents)
        return system.answer(CASE_QUERIES[case])

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    agents = [t.agent for t in result.stage_trace]
    artifacts = [t.artifact_kind for t in result.stage_trace]
    print_rows(
        f"Figure 1 trace — case {case}",
        [
            ("agents", " → ".join(agents)),
            ("artifacts", " → ".join(artifacts)),
            ("execution", "ok" if result.execution.succeeded else "FAILED"),
            ("generated LoC", result.solution.loc),
        ],
    )
    assert agents == EXPECTED_AGENTS
    assert artifacts == EXPECTED_ARTIFACTS
    assert result.execution.succeeded
