"""A3 — registry evolution: validation-first gating prevents bloat.

The paper's design argument (§3): RegistryCurator promotes only patterns
that validate; repeated runs must not re-add equivalents, and failed
executions contribute nothing.  Measured as registry growth over a sequence
of pipeline runs.
"""

from benchmarks.conftest import print_rows
from repro.core.agents import RegistryCurator
from repro.core.artifacts import ExecutionOutcome
from repro.core.llm.simulated import SimulatedLLM
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.evalharness.casestudies import CASE_QUERIES
from repro.synth.scenarios import make_latency_incident


def test_curator_growth_is_gated(world, benchmark):
    def run_sequence():
        registry = default_registry().subset(frameworks=["nautilus"])
        baseline = len(registry)
        growth = [("start", baseline, [])]

        # Run CS1 three times over the same evolving registry.
        system = ArachNet.for_world(world, registry=registry)
        for i in range(3):
            result = system.answer(CASE_QUERIES[1])
            growth.append(
                (f"cs1 run {i + 1}", len(registry), result.curator.added_entries)
            )

        # A failed execution must never grow the registry.
        curator = RegistryCurator(SimulatedLLM(), registry)
        before = len(registry)
        curator.curate(result.design, ExecutionOutcome(succeeded=False, error="x"),
                       registry)
        growth.append(("failed execution", len(registry), []))
        assert len(registry) == before
        return growth

    growth = benchmark.pedantic(run_sequence, rounds=1, iterations=1)

    print_rows(
        "Curator evolution (paper §3: validation before integration)",
        [(label, f"registry size {size}, added: {added or '(none)'}")
         for label, size, added in growth],
    )
    # Exactly one promotion across all repeat runs of the same pattern.
    sizes = [size for _, size, _ in growth]
    assert sizes[1] == sizes[0] + 1  # first run promotes the composite
    assert sizes[2] == sizes[1]  # second run adds nothing
    assert sizes[3] == sizes[2]  # third run adds nothing
    assert sizes[4] == sizes[3]  # failed execution adds nothing
