"""E3 — §4.2 Case Study 3: automated cascading-failure analysis.

Regenerates the paper's CS3 rows: integration across exactly four
measurement frameworks, a cascade timeline spanning the cable, IP and AS
layers, and generated-code size (paper ≈525 lines for what "traditionally
requires days of manual coordination").
"""

from benchmarks.conftest import print_rows
from repro.evalharness.casestudies import run_case3


def test_case3_cascading_failures(world, benchmark):
    report = benchmark.pedantic(run_case3, args=(world,), rounds=1, iterations=1)

    print_rows(
        "Case Study 3: Europe–Asia cascading failures (paper §4.2)",
        [
            ("query", report.query),
            ("generated LoC", f"{report.metrics['generated_loc']} (paper ≈525)"),
            ("frameworks integrated",
             f"{report.metrics['framework_count']} "
             f"({', '.join(report.metrics['frameworks_used'])}) (paper: 4)"),
            ("corridor cables", report.metrics["corridor_cables_generated"]),
            ("corridor matches expert",
             report.metrics["corridor_cables_generated"]
             == report.metrics["corridor_cables_expert"]),
            ("timeline layers", report.metrics["timeline_layers"]),
            ("cascade rounds (gen/expert)",
             f"{report.metrics['cascade_rounds_generated']}/"
             f"{report.metrics['cascade_rounds_expert']}"),
            ("functional overlap (jaccard)", report.metrics["functional_overlap_jaccard"]),
            ("checks", "ALL PASS" if report.all_passed else report.checks),
        ],
    )
    assert report.all_passed, report.checks
