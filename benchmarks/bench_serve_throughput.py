"""S1 — Serve-layer throughput: worker scaling, backend axis, affinity, cache.

Four sections:

1. **Latency overlap** — the same scenario campaign through a fresh broker
   at 1, 4 and 8 worker threads with a modeled hosted-LLM round trip
   (:class:`SimulatedHostedLLM`): completion latency is what a thread pool
   overlaps in the real deployment.
2. **Backend axis** — a CPU-bound campaign (zero LLM latency, artifact
   cache disabled so every job pays the full pipeline) through the
   ``thread`` backend vs the ``process`` backend at equal worker counts.
   Threads serialize on the GIL here; the preforked process pool must win
   by ≥1.5× while producing byte-identical artifacts.
3. **Affinity economics** — resubmit a campaign through the process
   backend: sticky routing must send ≥80% of the resubmission back to
   each job's bound worker (whose process-local caches hold it warm), and
   the per-worker hit/miss/steal counters land in the output JSON so the
   win is observable, not asserted.
4. **Warm cache** — resubmit the identical campaign against the warm
   artifact cache to measure the memoization win.
5. **Durability tax** — the CPU-bound campaign again with the write-ahead
   journal on (fsync'd submit/complete records): overhead vs the
   unjournaled broker must stay within a few percent, and a fresh broker
   resumed on the same journal must re-join every completion byte-
   identically without re-executing anything.

Standalone (what CI smokes)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.llm.simulated import SimulatedHostedLLM
from repro.serve import CampaignJob, QueryBroker, ServeConfig, run_campaign
from repro.serve.campaign import CABLE_IMPACT_TEMPLATE, DISASTER_TEMPLATE
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MIN_WORKER_SPEEDUP = 2.0  # 4 workers vs 1 worker, 50-job campaign
MIN_PROCESS_SPEEDUP = 1.5  # process vs thread backend, CPU-bound campaign
MIN_RESUBMIT_HIT_RATE = 0.90
MIN_AFFINITY_HIT_RATE = 0.80  # warm routing on campaign resubmission
#: The CI smoke keeps looser scaling bars: on loaded shared runners the
#: GIL-bound execution stage eats into the latency overlap, small campaigns
#: amortize less startup jitter, and the process pool pays its fork cost
#: over fewer jobs.  Local full runs show ~2.7x worker scaling and >1.5x
#: process-backend speedup.
SMOKE_MIN_SPEEDUP = 1.3
SMOKE_MIN_PROCESS_SPEEDUP = 1.05
#: Journal tax ceiling: two fsync'd appends per job (submit + complete)
#: against a pipeline job costing tens of milliseconds.  Smoke campaigns
#: are small enough that a single slow fsync on a loaded shared runner
#: moves the percentage, hence the looser bar.
MAX_JOURNAL_OVERHEAD_PCT = 5.0
SMOKE_MAX_JOURNAL_OVERHEAD_PCT = 25.0


def available_cores() -> int:
    """Cores this process may run on — the process backend's speedup ceiling.

    On a single-core box a process pool cannot beat threads at CPU-bound
    work (there is no hardware parallelism to unlock), so the speedup
    threshold only applies when >= 2 cores are available; the byte-identical
    artifact check applies everywhere.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_jobs(world, count: int) -> list[CampaignJob]:
    """``count`` textually distinct scenario queries: one per cable, then
    disaster sweeps at stepped failure probabilities."""
    jobs = [
        CampaignJob(query=CABLE_IMPACT_TEMPLATE.format(cable=cable),
                    tag=f"cable:{cable}")
        for cable in world.cable_names()
    ]
    kinds = ("earthquake", "hurricane")
    step = 0
    while len(jobs) < count:
        kind = kinds[step % len(kinds)]
        probability = 0.05 + 0.01 * (step // len(kinds))
        jobs.append(CampaignJob(
            query=DISASTER_TEMPLATE.format(kind=kind, probability=probability),
            tag=f"disaster:{kind}:{probability:.2f}",
        ))
        step += 1
    return jobs[:count]


def run_once(world, jobs, workers: int, latency_s: float):
    """One cold campaign on a fresh broker; returns (report, broker)."""
    broker = QueryBroker(
        world,
        config=ServeConfig(
            workers=workers,
            llm_factory=lambda: SimulatedHostedLLM(latency_s=latency_s),
        ),
    ).start()
    report = run_campaign(broker, jobs)
    return report, broker


def compare_backends(world, jobs, workers: int) -> dict:
    """CPU-bound campaign through each backend; returns the comparison row.

    Zero LLM latency and no artifact cache, so throughput is pure pipeline
    compute — the regime where the process pool escapes the GIL.  Each
    backend warms up on a slice of the campaign first (the process pool
    builds its per-process worlds there) so the measurement captures steady
    state, not fork cost.
    """
    row: dict = {"jobs_per_sec": {}, "digests": {}}
    for backend in ("thread", "process"):
        broker = QueryBroker(
            world,
            config=ServeConfig(workers=workers, backend=backend,
                               cache_enabled=False),
        ).start()
        try:
            warm = run_campaign(broker, jobs[: workers * 2])
            assert warm.failed == 0, f"{backend} warmup failed: {warm.outcomes}"
            report = run_campaign(broker, jobs)
            assert report.failed == 0, f"{backend}: {report.failed} jobs failed"
            row["jobs_per_sec"][backend] = report.jobs_per_sec
            row["digests"][backend] = sorted(
                broker.result(t).artifact_digest() for t in report.tickets
            )
            print(f"  backend={backend:<8s} {report.succeeded}/{report.total} ok  "
                  f"{report.duration_s:6.2f}s  {report.jobs_per_sec:6.1f} jobs/s")
        finally:
            broker.shutdown()
    row["speedup"] = row["jobs_per_sec"]["process"] / row["jobs_per_sec"]["thread"]
    row["artifacts_identical"] = row["digests"]["thread"] == row["digests"]["process"]
    print(f"  process vs thread: {row['speedup']:.2f}x  "
          f"byte-identical artifacts: {row['artifacts_identical']}")
    return row


def measure_affinity(world, jobs, workers: int) -> dict:
    """Campaign resubmission through the process backend: warm-routing rate.

    The cold round binds every (world, query) affinity key to a worker and
    fills that worker's process-local caches; the resubmission must route
    back to the bound workers (hit rate over the second round only) and
    finish faster off their warm caches.
    """
    broker = QueryBroker(
        world, config=ServeConfig(workers=workers, backend="process")
    ).start()
    try:
        cold = run_campaign(broker, jobs)
        assert cold.failed == 0, f"affinity cold round: {cold.outcomes}"
        before = broker.stats()["backend"]["affinity"]
        warm = run_campaign(broker, jobs)
        assert warm.failed == 0, f"affinity warm round: {warm.outcomes}"
        after = broker.stats()["backend"]["affinity"]
    finally:
        broker.shutdown()
    routed = sum(after[k] - before[k] for k in ("hits", "misses", "steals"))
    hit_rate = (after["hits"] - before["hits"]) / routed if routed else 0.0
    row = {
        "jobs": len(jobs),
        "workers": workers,
        "hit_rate": round(hit_rate, 4),
        "resubmit_speedup": round(warm.jobs_per_sec / cold.jobs_per_sec, 3),
        "counters": after,
    }
    print(f"  resubmit routing: {after['hits'] - before['hits']}/{routed} "
          f"to bound workers ({hit_rate:.0%}), "
          f"{row['resubmit_speedup']:.2f}x vs cold "
          f"({after['steals']} steals, {after['respawns']} respawns total)")
    return row


def measure_durability(world, jobs, workers: int, repeats: int = 3) -> dict:
    """Journal tax + resume fidelity on the CPU-bound campaign.

    Interleaved best-of-``repeats`` rounds on fresh brokers (thread
    backend, artifact cache off so every job pays the full pipeline):
    unjournaled vs journaled — the tax is the delta of the *best* round
    each, since scheduler noise on a shared box (easily ±30%) dwarfs the
    true per-job cost of two sub-millisecond fsyncs.  A final *resumed*
    broker on the journaled directory must re-join every completion from
    the journal (``replayed == jobs``) with byte-identical artifact
    digests and zero re-execution.
    """
    import shutil
    import tempfile

    def _round(journal_dir):
        broker = QueryBroker(
            world,
            config=ServeConfig(workers=workers, cache_enabled=False,
                               journal_dir=journal_dir),
        ).start()
        try:
            report = run_campaign(broker, jobs)
            assert report.failed == 0, f"durability round: {report.outcomes}"
            digests = sorted(
                broker.result(t).artifact_digest() for t in report.tickets
            )
            return report, digests, broker.stats()
        finally:
            broker.shutdown()

    plain_jps, journaled_jps = [], []
    plain_digests = journaled_digests = None
    appended = 0
    wal_dirs = []
    try:
        for _ in range(max(1, repeats)):
            plain, plain_digests, _ = _round(None)
            plain_jps.append(plain.jobs_per_sec)
            wal_dirs.append(tempfile.mkdtemp(prefix="bench_wal_"))
            journaled, journaled_digests, stats = _round(wal_dirs[-1])
            journaled_jps.append(journaled.jobs_per_sec)
            appended = stats["journal"]["appended"]
        resumed, resumed_digests, resumed_stats = _round(wal_dirs[-1])
    finally:
        for wal_dir in wal_dirs:
            shutil.rmtree(wal_dir, ignore_errors=True)
    best_plain, best_journaled = max(plain_jps), max(journaled_jps)
    overhead_pct = (best_plain - best_journaled) / best_plain * 100.0
    row = {
        "jobs": len(jobs),
        "repeats": max(1, repeats),
        "plain_jobs_per_sec": round(best_plain, 2),
        "journaled_jobs_per_sec": round(best_journaled, 2),
        "journal_overhead_pct": round(overhead_pct, 2),
        "journal_appended": appended,
        "resume_replayed": resumed.replayed,
        "resume_reexecuted": len(jobs) - resumed.replayed,
        "resume_identical": (plain_digests == journaled_digests
                             == resumed_digests),
        "recovery_completions": resumed_stats["recovery"]["completions"],
    }
    print(f"  unjournaled {best_plain:6.1f} jobs/s   "
          f"journaled {best_journaled:6.1f} jobs/s   "
          f"tax {overhead_pct:+.1f}% "
          f"(best of {row['repeats']}; {appended} fsync'd records/round)")
    print(f"  resume: {resumed.replayed}/{len(jobs)} re-joined from the "
          f"journal, {row['resume_reexecuted']} re-executed, "
          f"byte-identical: {row['resume_identical']}")
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=50)
    parser.add_argument("--cpu-jobs", type=int, default=24,
                        help="campaign size for the CPU-bound backend comparison")
    parser.add_argument("--latency-ms", type=float, default=40.0,
                        help="modeled hosted-LLM round trip per completion")
    parser.add_argument("--workers", default="1,4,8",
                        help="comma-separated worker counts (first is baseline)")
    parser.add_argument("--backend-workers", type=int, default=4,
                        help="worker count for the backend comparison")
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: 12 jobs, 25ms latency, workers 1,4, "
                             "10 CPU jobs")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--skip-backends", action="store_true",
                        help="skip the process-vs-thread backend section")
    parser.add_argument("--skip-durability", action="store_true",
                        help="skip the journal-tax / resume-fidelity section")
    parser.add_argument("--out", default="BENCH_serve_throughput.json",
                        help="write the result summary here ('' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs, args.latency_ms, args.workers = 12, 25.0, "1,4"
        args.cpu_jobs = 10

    worker_counts = [int(w) for w in args.workers.split(",")]
    latency_s = args.latency_ms / 1000.0
    world = build_world(WorldConfig(seed=7))
    jobs = build_jobs(world, args.jobs)

    print(f"\n=== serve throughput — {len(jobs)} jobs, "
          f"{args.latency_ms:.0f}ms modeled LLM latency ===")
    throughput: dict[int, float] = {}
    last_broker = None
    for workers in worker_counts:
        if last_broker is not None:
            last_broker.shutdown()
        report, last_broker = run_once(world, jobs, workers, latency_s)
        throughput[workers] = report.jobs_per_sec
        print(f"  workers={workers:<2d} {report.succeeded}/{report.total} ok  "
              f"{report.duration_s:6.2f}s  {report.jobs_per_sec:6.1f} jobs/s")
        assert report.failed == 0, f"{report.failed} jobs failed at {workers} workers"

    baseline = worker_counts[0]
    scaled = worker_counts[1] if len(worker_counts) > 1 else baseline
    speedup = throughput[scaled] / throughput[baseline]
    print(f"  speedup {scaled}w vs {baseline}w: {speedup:.2f}x")

    backends = None
    affinity = None
    cores = available_cores()
    if not args.skip_backends:
        print(f"\n=== backend axis — {args.cpu_jobs} CPU-bound jobs "
              f"(zero LLM latency, cache off), {args.backend_workers} workers, "
              f"{cores} core(s) available ===")
        backends = compare_backends(
            world, build_jobs(world, args.cpu_jobs), args.backend_workers
        )
        print(f"\n=== affinity economics — {args.cpu_jobs} jobs resubmitted, "
              f"{args.backend_workers} workers, process backend ===")
        affinity = measure_affinity(
            world, build_jobs(world, args.cpu_jobs), args.backend_workers
        )

    durability = None
    if not args.skip_durability:
        print(f"\n=== durability tax — {args.cpu_jobs} CPU-bound jobs, "
              f"{args.backend_workers} workers, fsync'd write-ahead "
              "journal ===")
        durability = measure_durability(
            world, build_jobs(world, args.cpu_jobs), args.backend_workers
        )

    # Resubmit the identical campaign against the warm cache.
    cold_jps = throughput[worker_counts[-1]]
    last_broker.cache.reset_stats()
    warm = run_campaign(last_broker, jobs)
    hit_rate = last_broker.cache.stats()["hit_rate"]
    print(f"  resubmit    {warm.succeeded}/{warm.total} ok  "
          f"{warm.duration_s:6.2f}s  {warm.jobs_per_sec:6.1f} jobs/s  "
          f"cache hit rate {hit_rate:.0%} "
          f"({warm.jobs_per_sec / cold_jps:.1f}x vs cold)")
    last_broker.shutdown()

    if args.out:
        summary = {
            "benchmark": "serve_throughput",
            "jobs": len(jobs),
            "latency_ms": args.latency_ms,
            "jobs_per_sec": {str(w): round(v, 2) for w, v in throughput.items()},
            "speedup": round(speedup, 3),
            "warm_jobs_per_sec": round(warm.jobs_per_sec, 2),
            "warm_hit_rate": round(hit_rate, 4),
        }
        if backends is not None:
            summary["backend_jobs_per_sec"] = {
                k: round(v, 2) for k, v in backends["jobs_per_sec"].items()
            }
            summary["process_speedup"] = round(backends["speedup"], 3)
            summary["artifacts_identical"] = backends["artifacts_identical"]
            summary["cores"] = cores
        if affinity is not None:
            summary["affinity_hit_rate"] = affinity["hit_rate"]
            summary["affinity_resubmit_speedup"] = affinity["resubmit_speedup"]
            summary["affinity"] = affinity["counters"]
        if durability is not None:
            summary["journal_overhead_pct"] = durability["journal_overhead_pct"]
            summary["durability"] = durability
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        min_speedup = SMOKE_MIN_SPEEDUP if args.smoke else MIN_WORKER_SPEEDUP
        assert speedup >= min_speedup, (
            f"worker speedup {speedup:.2f}x below {min_speedup}x"
        )
        assert hit_rate >= MIN_RESUBMIT_HIT_RATE, (
            f"resubmit hit rate {hit_rate:.0%} below {MIN_RESUBMIT_HIT_RATE:.0%}"
        )
        process_note = ""
        if backends is not None:
            assert backends["artifacts_identical"], (
                "thread and process backends produced different artifacts"
            )
            if cores >= 2:
                min_process = (
                    SMOKE_MIN_PROCESS_SPEEDUP if args.smoke else MIN_PROCESS_SPEEDUP
                )
                assert backends["speedup"] >= min_process, (
                    f"process backend speedup {backends['speedup']:.2f}x "
                    f"below {min_process}x on {cores} cores"
                )
                process_note = (f", process backend >= {min_process}x "
                                "with identical artifacts")
            else:
                print("  NOTE: single core available — process-speedup "
                      "threshold skipped (artifact identity still enforced)")
                process_note = ", identical artifacts (1 core: no speedup bar)"
        if affinity is not None:
            # Sticky routing is deterministic; the bar holds on any core count.
            assert affinity["hit_rate"] >= MIN_AFFINITY_HIT_RATE, (
                f"affinity hit rate {affinity['hit_rate']:.0%} below "
                f"{MIN_AFFINITY_HIT_RATE:.0%} on resubmission"
            )
            process_note += (f", >={MIN_AFFINITY_HIT_RATE:.0%} warm "
                             "affinity routing")
        if durability is not None:
            max_tax = (SMOKE_MAX_JOURNAL_OVERHEAD_PCT if args.smoke
                       else MAX_JOURNAL_OVERHEAD_PCT)
            assert durability["journal_overhead_pct"] <= max_tax, (
                f"journal overhead {durability['journal_overhead_pct']:.1f}% "
                f"above {max_tax}%"
            )
            assert durability["resume_replayed"] == durability["jobs"], (
                f"resume re-executed {durability['resume_reexecuted']} "
                "journaled-complete jobs"
            )
            assert durability["resume_identical"], (
                "resumed artifact digests diverged from the plain run"
            )
            process_note += (f", journal tax <= {max_tax}% with "
                             "byte-identical resume")
        print(f"  thresholds met: >={min_speedup}x scaling, "
              f">={MIN_RESUBMIT_HIT_RATE:.0%} warm hit rate" + process_note)
    return 0


def test_serve_throughput_smoke(tmp_path):
    """Pytest entry point: the CI smoke preset must meet both thresholds."""
    assert main(["--smoke", "--out", str(tmp_path / "BENCH_serve_throughput.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
