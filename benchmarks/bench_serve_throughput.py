"""S1 — Serve-layer throughput: worker scaling and cache-hit speedup.

Runs the same scenario campaign through a fresh broker at 1, 4 and 8
workers and reports jobs/sec, then resubmits the campaign against the warm
artifact cache to measure the memoization win.  The LLM backend is
:class:`SimulatedHostedLLM` — the simulated expert behind a modeled
hosted-model round trip — because completion latency, not local compute,
is what a worker pool overlaps in the real deployment.

Standalone (what CI smokes)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py -s
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.llm.simulated import SimulatedHostedLLM
from repro.serve import CampaignJob, QueryBroker, ServeConfig, run_campaign
from repro.serve.campaign import CABLE_IMPACT_TEMPLATE, DISASTER_TEMPLATE
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MIN_WORKER_SPEEDUP = 2.0  # 4 workers vs 1 worker, 50-job campaign
MIN_RESUBMIT_HIT_RATE = 0.90
#: The 12-job CI smoke keeps a looser scaling bar: on loaded shared runners
#: the GIL-bound execution stage eats into the latency overlap, and a small
#: campaign amortizes less startup jitter.  Local full runs show ~2.7x.
SMOKE_MIN_SPEEDUP = 1.3


def build_jobs(world, count: int) -> list[CampaignJob]:
    """``count`` textually distinct scenario queries: one per cable, then
    disaster sweeps at stepped failure probabilities."""
    jobs = [
        CampaignJob(query=CABLE_IMPACT_TEMPLATE.format(cable=cable),
                    tag=f"cable:{cable}")
        for cable in world.cable_names()
    ]
    kinds = ("earthquake", "hurricane")
    step = 0
    while len(jobs) < count:
        kind = kinds[step % len(kinds)]
        probability = 0.05 + 0.01 * (step // len(kinds))
        jobs.append(CampaignJob(
            query=DISASTER_TEMPLATE.format(kind=kind, probability=probability),
            tag=f"disaster:{kind}:{probability:.2f}",
        ))
        step += 1
    return jobs[:count]


def run_once(world, jobs, workers: int, latency_s: float):
    """One cold campaign on a fresh broker; returns (report, broker)."""
    broker = QueryBroker(
        world,
        config=ServeConfig(
            workers=workers,
            llm_factory=lambda: SimulatedHostedLLM(latency_s=latency_s),
        ),
    ).start()
    report = run_campaign(broker, jobs)
    return report, broker


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=50)
    parser.add_argument("--latency-ms", type=float, default=40.0,
                        help="modeled hosted-LLM round trip per completion")
    parser.add_argument("--workers", default="1,4,8",
                        help="comma-separated worker counts (first is baseline)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: 12 jobs, 25ms latency, workers 1,4")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--out", default="BENCH_serve_throughput.json",
                        help="write the result summary here ('' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs, args.latency_ms, args.workers = 12, 25.0, "1,4"

    worker_counts = [int(w) for w in args.workers.split(",")]
    latency_s = args.latency_ms / 1000.0
    world = build_world(WorldConfig(seed=7))
    jobs = build_jobs(world, args.jobs)

    print(f"\n=== serve throughput — {len(jobs)} jobs, "
          f"{args.latency_ms:.0f}ms modeled LLM latency ===")
    throughput: dict[int, float] = {}
    last_broker = None
    for workers in worker_counts:
        if last_broker is not None:
            last_broker.shutdown()
        report, last_broker = run_once(world, jobs, workers, latency_s)
        throughput[workers] = report.jobs_per_sec
        print(f"  workers={workers:<2d} {report.succeeded}/{report.total} ok  "
              f"{report.duration_s:6.2f}s  {report.jobs_per_sec:6.1f} jobs/s")
        assert report.failed == 0, f"{report.failed} jobs failed at {workers} workers"

    baseline = worker_counts[0]
    scaled = worker_counts[1] if len(worker_counts) > 1 else baseline
    speedup = throughput[scaled] / throughput[baseline]
    print(f"  speedup {scaled}w vs {baseline}w: {speedup:.2f}x")

    # Resubmit the identical campaign against the warm cache.
    cold_jps = throughput[worker_counts[-1]]
    last_broker.cache.reset_stats()
    warm = run_campaign(last_broker, jobs)
    hit_rate = last_broker.cache.stats()["hit_rate"]
    print(f"  resubmit    {warm.succeeded}/{warm.total} ok  "
          f"{warm.duration_s:6.2f}s  {warm.jobs_per_sec:6.1f} jobs/s  "
          f"cache hit rate {hit_rate:.0%} "
          f"({warm.jobs_per_sec / cold_jps:.1f}x vs cold)")
    last_broker.shutdown()

    if args.out:
        summary = {
            "benchmark": "serve_throughput",
            "jobs": len(jobs),
            "latency_ms": args.latency_ms,
            "jobs_per_sec": {str(w): round(v, 2) for w, v in throughput.items()},
            "speedup": round(speedup, 3),
            "warm_jobs_per_sec": round(warm.jobs_per_sec, 2),
            "warm_hit_rate": round(hit_rate, 4),
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        min_speedup = SMOKE_MIN_SPEEDUP if args.smoke else MIN_WORKER_SPEEDUP
        assert speedup >= min_speedup, (
            f"worker speedup {speedup:.2f}x below {min_speedup}x"
        )
        assert hit_rate >= MIN_RESUBMIT_HIT_RATE, (
            f"resubmit hit rate {hit_rate:.0%} below {MIN_RESUBMIT_HIT_RATE:.0%}"
        )
        print(f"  thresholds met: >={min_speedup}x scaling, "
              f">={MIN_RESUBMIT_HIT_RATE:.0%} warm hit rate")
    return 0


def test_serve_throughput_smoke(tmp_path):
    """Pytest entry point: the CI smoke preset must meet both thresholds."""
    assert main(["--smoke", "--out", str(tmp_path / "BENCH_serve_throughput.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
