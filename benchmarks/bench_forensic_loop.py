"""L2 — Forensic loop: alert→verdict latency and triggered-query economics.

Replays a multi-event timeline (three overlapping catalog disasters with
disjoint cable footprints) through the full closed loop — telemetry →
detectors → :class:`ForensicTrigger` → high-priority broker queries →
verdicts scored against ground truth — then replays it against the warm
broker to show the triggered-query cache collapses the loop to lookups.

What it demonstrates:

* every ground-truth incident yields exactly one deduped
  :class:`ForensicCase`, and every case's triggered query completes;
* verdict quality: the identified cable matches the incident's ground
  truth (corridor escalation pays for itself);
* alert→verdict wall-clock latency, cold vs warm;
* trigger economics: queries submitted vs cache hits, corridor
  escalations, alerts merged per case, epoch-shard pool reuse, and the
  priority path (forensic submissions jump the standing-query band).

Standalone (what CI smokes)::

    PYTHONPATH=src python benchmarks/bench_forensic_loop.py --smoke

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_forensic_loop.py -s

Results are written to ``BENCH_forensic_loop.json`` so CI can archive the
perf trajectory per PR; ``bench_runner.py`` gates them against the
committed floor in ``bench_baseline.json``.
"""

from __future__ import annotations

import argparse
import json

from repro.live import (
    FORENSIC_PRIORITY,
    LiveConfig,
    overlapping_catalog_timeline,
    run_live_replay,
)
from repro.serve import QueryBroker, ServeConfig
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MIN_INCIDENT_CASE_RATE = 1.0   # one deduped case per ground-truth incident
MIN_COMPLETED_RATE = 1.0       # every triggered query completes
MIN_CONFIRMED_RATE = 0.66      # verdicts naming a ground-truth cable
MAX_MEAN_ALERT_LATENCY_EPOCHS = 2.0
MIN_WARM_TRIGGER_HIT_RATE = 1.0  # warm replay submits nothing


def replay(world, timeline, config, broker):
    return run_live_replay(
        world=world, timeline_events=timeline, config=config, broker=broker
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--events", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset (the default shape is already small)")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--out", default="BENCH_forensic_loop.json",
                        help="write the result summary here ('' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.epochs, args.events = 20, 3

    world = build_world(WorldConfig(seed=7))
    timeline = overlapping_catalog_timeline(world, count=args.events)
    config = LiveConfig(epochs=args.epochs, workers=args.workers, forensics=True)

    print(f"\n=== forensic loop — {args.events} overlapping disasters over "
          f"{args.epochs} epochs, {args.workers} workers ===")
    broker = QueryBroker(world, config=ServeConfig(workers=args.workers)).start()
    try:
        cold = replay(world, timeline, config, broker)
        warm = replay(world, timeline, config, broker)
    finally:
        broker.shutdown()

    incidents = len(cold.incident_epochs)
    cold_stats = cold.forensic_stats
    warm_stats = warm.forensic_stats
    cold_lat = cold_stats["mean_verdict_latency_s"] or 0.0
    warm_lat = warm_stats["mean_verdict_latency_s"] or 0.0
    for tag, rep, stats in (("cold", cold, cold_stats), ("warm", warm, warm_stats)):
        lat = stats["mean_verdict_latency_s"]
        print(f"  {tag:<5} {len(rep.forensic_cases)} cases for {incidents} "
              f"incidents  {rep.completed_cases} completed, "
              f"{rep.confirmed_cases} confirmed; "
              f"{stats['queries_submitted']} queries submitted / "
              f"{stats['query_cache_hits']} cache hits / "
              f"{stats['escalations']} escalations; "
              f"alert->verdict {lat if lat is None else round(lat, 4)}s")
    per_priority = cold.broker_stats.get("submitted_by_priority", {})
    print(f"  priority  forensic band {FORENSIC_PRIORITY}: "
          f"{per_priority.get(FORENSIC_PRIORITY, 0)} submissions; "
          f"scheduler preemptions "
          f"{cold.broker_stats['scheduler']['preemptions']}")

    warm_submitted = warm_stats["queries_submitted"]
    warm_lookups = warm_stats["query_cache_hits"]
    summary = {
        "benchmark": "forensic_loop",
        "epochs": args.epochs,
        "events": args.events,
        "workers": args.workers,
        "incidents": incidents,
        "cases": len(cold.forensic_cases),
        "completed_cases": cold.completed_cases,
        "confirmed_cases": cold.confirmed_cases,
        "incident_case_rate": (
            len(cold.forensic_cases) / incidents if incidents else 0.0
        ),
        "completed_rate": (
            cold.completed_cases / len(cold.forensic_cases)
            if cold.forensic_cases else 0.0
        ),
        "confirmed_rate": (
            cold.confirmed_cases / len(cold.forensic_cases)
            if cold.forensic_cases else 0.0
        ),
        "mean_alert_latency_epochs": cold_stats["mean_alert_latency_epochs"],
        "cold_mean_verdict_latency_s": round(cold_lat, 6),
        "warm_mean_verdict_latency_s": round(warm_lat, 6),
        "verdict_latency_speedup": round(cold_lat / warm_lat, 1) if warm_lat else None,
        "cold_queries_submitted": cold_stats["queries_submitted"],
        "cold_escalations": cold_stats["escalations"],
        "warm_queries_submitted": warm_submitted,
        "warm_query_cache_hits": warm_lookups,
        "warm_trigger_hit_rate": (
            warm_lookups / (warm_lookups + warm_submitted)
            if (warm_lookups + warm_submitted) else 0.0
        ),
        "alerts_seen": cold_stats["alerts_seen"],
        "alerts_merged": cold_stats["alerts_merged"],
        "suppressed_threshold": cold_stats["suppressed_threshold"],
        "mean_queries_per_case": cold_stats["mean_queries_per_case"],
        "pool": cold_stats["pool"],
        "forensic_submissions": per_priority.get(FORENSIC_PRIORITY, 0),
        "scheduler_preemptions": cold.broker_stats["scheduler"]["preemptions"],
        "case_records": [
            {k: c[k] for k in ("case_id", "event_id", "alert_kind",
                               "alert_epoch", "verdict", "identified_cable",
                               "queries_run", "corridors_tried",
                               "alerts_merged", "verdict_latency_s")}
            for c in cold.forensic_cases
        ],
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1, default=str)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        assert summary["incident_case_rate"] >= MIN_INCIDENT_CASE_RATE, (
            f"{summary['cases']} cases for {incidents} incidents; every "
            "ground-truth incident must yield exactly one deduped case"
        )
        assert len(cold.forensic_cases) == incidents, (
            f"{len(cold.forensic_cases)} cases != {incidents} incidents "
            "(dedup failed or an incident went untriggered)"
        )
        assert summary["completed_rate"] >= MIN_COMPLETED_RATE, (
            f"only {cold.completed_cases}/{len(cold.forensic_cases)} "
            "triggered queries completed"
        )
        assert summary["confirmed_rate"] >= MIN_CONFIRMED_RATE, (
            f"confirmed rate {summary['confirmed_rate']:.0%} below "
            f"{MIN_CONFIRMED_RATE:.0%}"
        )
        assert summary["mean_alert_latency_epochs"] <= MAX_MEAN_ALERT_LATENCY_EPOCHS, (
            f"mean alert latency {summary['mean_alert_latency_epochs']} epochs "
            f"exceeds {MAX_MEAN_ALERT_LATENCY_EPOCHS}"
        )
        assert summary["warm_trigger_hit_rate"] >= MIN_WARM_TRIGGER_HIT_RATE, (
            f"warm replay submitted {warm_submitted} triggered queries; an "
            "unchanged timeline must resolve every case from cache"
        )
        print("  thresholds met: one confirmed case per incident, warm "
              "replay submits nothing")
    return 0


def test_forensic_loop_smoke(tmp_path):
    """Pytest entry point: the CI smoke preset must meet every threshold."""
    out = tmp_path / "BENCH_forensic_loop.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    summary = json.loads(out.read_text())
    assert summary["completed_cases"] == summary["incidents"]


if __name__ == "__main__":
    raise SystemExit(main())
