"""E2 — §4.1 Case Study 2: natural-disaster impact with skilled restraint.

Regenerates the paper's CS2 rows: a single versatile function handles the
multi-disaster analysis despite a full multi-framework registry, the
extracted failure probability matches the query's "10%", and generated and
expert workflows produce functionally identical results (paper ≈300 lines).
"""

from benchmarks.conftest import print_rows
from repro.evalharness.casestudies import run_case2


def test_case2_disaster_restraint(world, benchmark):
    report = benchmark.pedantic(run_case2, args=(world,), rounds=1, iterations=1)

    print_rows(
        "Case Study 2: severe earthquakes + hurricanes @ 10% (paper §4.1)",
        [
            ("query", report.query),
            ("registry", "full multi-framework registry"),
            ("generated LoC", f"{report.metrics['generated_loc']} (paper ≈300)"),
            ("analysis functions used", report.metrics["analysis_functions_used"]),
            ("frameworks used", report.metrics["frameworks_used"]),
            ("failure probability extracted", report.metrics["failure_probability"]),
            ("events processed (gen/expert)",
             f"{report.metrics['events_processed_generated']}/"
             f"{report.metrics['events_processed_expert']}"),
            ("identical failure sets", report.metrics["same_failed_cables"]),
            ("combined ranking spearman", report.metrics["ranking_spearman"]),
            ("checks", "ALL PASS" if report.all_passed else report.checks),
        ],
    )
    assert report.all_passed, report.checks
