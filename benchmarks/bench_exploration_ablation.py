"""A2 — adaptive exploration: effort scales with problem complexity.

The paper's design argument (§3): WorkflowScout evaluates a direct solution
path for simple queries and explores alternatives only for complex
multi-framework problems.  Measured as exploration mode and alternative
count per query class.
"""

from benchmarks.conftest import print_rows
from repro.core.pipeline import ArachNet
from repro.core.registry import default_registry
from repro.evalharness.casestudies import CASE_QUERIES
from repro.synth.scenarios import make_latency_incident

SIMPLE_QUERY = "How exposed is Singapore to single cable failures?"


def test_exploration_scales_with_complexity(world, benchmark):
    def run_all():
        rows = []
        # Simple risk query: direct path expected.
        system = ArachNet.for_world(world, curate=False)
        simple = system.answer(SIMPLE_QUERY, params={"country_code": "SG"})
        rows.append(("simple", simple))
        # CS1 with full registry: a dedicated function exists → direct.
        cs1 = ArachNet.for_world(world, curate=False).answer(CASE_QUERIES[1])
        rows.append(("cs1-full-registry", cs1))
        # Complex cases: comparative exploration expected.
        for case in (2, 3):
            result = ArachNet.for_world(world, curate=False).answer(CASE_QUERIES[case])
            rows.append((f"cs{case}", result))
        incidents = [make_latency_incident(world, "SeaMeWe-5")]
        cs4 = ArachNet.for_world(world, incidents=incidents, curate=False).answer(
            CASE_QUERIES[4]
        )
        rows.append(("cs4", cs4))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_rows(
        "Adaptive exploration (paper §3: direct for simple, comparative for complex)",
        [
            (label,
             f"mode={result.design.exploration_mode}, "
             f"alternatives={len(result.design.alternatives)}, "
             f"steps={len(result.design.chosen.steps)}")
            for label, result in rows
        ],
    )
    by_label = dict(rows)
    assert by_label["simple"].design.exploration_mode == "direct"
    assert by_label["simple"].design.alternatives == []
    assert by_label["cs1-full-registry"].design.exploration_mode == "direct"
    for label in ("cs2", "cs3", "cs4"):
        assert by_label[label].design.exploration_mode == "comparative", label
        assert by_label[label].design.alternatives, label
    # Complex designs carry more steps than simple ones.
    assert (len(by_label["cs3"].design.chosen.steps)
            > len(by_label["simple"].design.chosen.steps))
