"""E1 — §4.1 Case Study 1: expert-level cable impact analysis.

Regenerates the paper's CS1 comparison rows: functional overlap with the
expert (Xaminer-style) workflow, equivalence of the country-level analysis,
and generated-code size (paper reports ≈250 lines).
"""

from benchmarks.conftest import print_rows
from repro.evalharness.casestudies import run_case1


def test_case1_expert_replication(world, benchmark):
    report = benchmark.pedantic(run_case1, args=(world,), rounds=1, iterations=1)

    print_rows(
        "Case Study 1: SeaMeWe-5 country-level impact (paper §4.1)",
        [
            ("query", report.query),
            ("registry", "core Nautilus functions only (Xaminer withheld)"),
            ("generated LoC", f"{report.metrics['generated_loc']} (paper ≈250)"),
            ("functional overlap (jaccard)", report.metrics["functional_overlap_jaccard"]),
            ("expert stage coverage", report.metrics["expert_stage_coverage"]),
            ("affected-set jaccard", report.metrics["affected_set_jaccard"]),
            ("per-country counts spearman", report.metrics["counts_spearman"]),
            ("impact score spearman", report.metrics["score_spearman"]),
            ("top-5 country overlap", report.metrics["top5_overlap"]),
            ("exploration mode", report.metrics["exploration_mode"]),
            ("checks", "ALL PASS" if report.all_passed else report.checks),
        ],
    )
    assert report.all_passed, report.checks
