"""Benchmark fixtures: shared world and row-printing helpers."""

import pytest

from repro.synth.world import WorldConfig, build_world


@pytest.fixture(scope="session")
def world():
    return build_world(WorldConfig())


def print_rows(title: str, rows: list[tuple]) -> None:
    """Print paper-style result rows under a header (shown with -s)."""
    print()
    print(f"=== {title} ===")
    width = max(len(str(r[0])) for r in rows) if rows else 10
    for key, value in rows:
        print(f"  {str(key):<{width}}  {value}")
