"""O1 — Observability plane: full-observation overhead and span completeness.

Two sections:

1. **Overhead** — the same CPU-bound campaign (thread backend, cache off,
   zero LLM latency) through a broker with observability disabled (the
   :data:`~repro.obs.NULL_TRACER` fast path, no recorder, no SLO engine)
   and fully observed: tracing on, the crash flight recorder teeing every
   span into its ring, and an :class:`~repro.obs.SloEngine` evaluating
   the default SLOs on a 50 ms ticker throughout the run.  Repeats are
   interleaved and each configuration keeps its best run, so machine
   drift hits both sides equally; the whole health plane must cost less
   than :data:`MAX_OVERHEAD_PCT` percent of throughput.  (The JSON keys
   keep their PR-6 names — ``traced_jobs_per_sec`` now means "fully
   observed" — so archived baselines stay comparable.)
2. **Completeness** — a traced campaign through the *process* backend:
   every job's trace must contain the full broker-to-worker span chain
   (``job``, ``queue.wait``, ``dispatch``, ``worker.execute``,
   ``pipeline.answer`` plus at least one ``stage.*`` span) with at least
   one span recorded in a worker process — proof the context crossed the
   pickle boundary and the records came back over the reply pipes.  The
   section also exports the trace (Chrome trace-event JSON) and the
   metrics registry (Prometheus text) as artifacts CI uploads.

Standalone (what CI smokes)::

    PYTHONPATH=src python benchmarks/bench_obs.py --smoke

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading

from repro.serve import CampaignJob, JobState, QueryBroker, ServeConfig, run_campaign
from repro.serve.campaign import CABLE_IMPACT_TEMPLATE, DISASTER_TEMPLATE
from repro.obs import SloEngine, TraceSink
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MAX_OVERHEAD_PCT = 5.0  # traced vs null-traced throughput, full run
#: The CI smoke measures tiny campaigns on loaded shared runners, where
#: run-to-run jitter alone exceeds the full-run bar; the real 5% gate is
#: enforced by full runs of bench_runner.py against the committed baseline.
SMOKE_MAX_OVERHEAD_PCT = 15.0
MIN_SPAN_COMPLETENESS = 1.0  # every traced job shows the full chain
#: Span names every broker-to-worker trace must contain.
REQUIRED_SPANS = frozenset(
    {"job", "queue.wait", "dispatch", "worker.execute", "pipeline.answer"}
)


def build_jobs(world, count: int) -> list[CampaignJob]:
    """``count`` textually distinct scenario queries (cache can never
    collapse two of them into one pipeline run)."""
    jobs = [
        CampaignJob(query=CABLE_IMPACT_TEMPLATE.format(cable=cable),
                    tag=f"cable:{cable}")
        for cable in world.cable_names()
    ]
    step = 0
    while len(jobs) < count:
        kind = ("earthquake", "hurricane")[step % 2]
        probability = 0.05 + 0.01 * (step // 2)
        jobs.append(CampaignJob(
            query=DISASTER_TEMPLATE.format(kind=kind, probability=probability),
            tag=f"disaster:{kind}:{probability:.2f}",
        ))
        step += 1
    return jobs[:count]


def run_campaign_once(world, jobs, workers: int, observed: bool) -> float:
    """One cold campaign on a fresh thread-backend broker; jobs/sec.

    ``observed`` turns on the whole health plane — tracing, the flight
    recorder (fed by every span), and a background SLO ticker evaluating
    the default objectives every 50 ms — the configuration the ≤5%
    overhead gate is measured against.
    """
    broker = QueryBroker(
        world,
        config=ServeConfig(workers=workers, backend="thread",
                           cache_enabled=False, tracing=observed,
                           flight=observed,
                           flight_dir=tempfile.gettempdir()),
    ).start()
    stop = threading.Event()
    ticker = None
    if observed:
        engine = SloEngine(broker.metrics, flight=broker.flight)

        def tick() -> None:
            while not stop.wait(0.05):
                engine.evaluate()

        ticker = threading.Thread(target=tick, daemon=True)
        ticker.start()
    try:
        report = run_campaign(broker, jobs)
        assert report.failed == 0, (
            f"observed={observed}: {report.failed} jobs failed"
        )
        return report.jobs_per_sec
    finally:
        stop.set()
        if ticker is not None:
            ticker.join()
        broker.shutdown()


def measure_overhead(world, jobs, workers: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` null vs fully-observed throughput."""
    null_best = traced_best = 0.0
    for i in range(repeats):
        null_jps = run_campaign_once(world, jobs, workers, observed=False)
        traced_jps = run_campaign_once(world, jobs, workers, observed=True)
        null_best = max(null_best, null_jps)
        traced_best = max(traced_best, traced_jps)
        print(f"  repeat {i + 1}/{repeats}: null {null_jps:6.1f} jobs/s  "
              f"observed {traced_jps:6.1f} jobs/s")
    overhead_pct = max(0.0, (null_best - traced_best) / null_best * 100.0)
    print(f"  best-of-{repeats}: null {null_best:.1f} vs observed "
          f"{traced_best:.1f} jobs/s -> {overhead_pct:.1f}% overhead")
    return {
        "null_jobs_per_sec": round(null_best, 2),
        "traced_jobs_per_sec": round(traced_best, 2),
        "overhead_pct": round(overhead_pct, 2),
    }


def _trace_complete(trace: list[dict], broker_pid: int) -> bool:
    names = {r["name"] for r in trace}
    return (REQUIRED_SPANS <= names
            and any(n.startswith("stage.") for n in names)
            and any(r["pid"] != broker_pid for r in trace))


def measure_completeness(world, jobs, workers: int,
                         trace_out: str, metrics_out: str) -> dict:
    """Traced process-backend campaign: per-job span-chain completeness.

    Also writes the two CI artifacts: the Chrome trace-event JSON and the
    Prometheus text dump of the broker's unified registry.
    """
    broker = QueryBroker(
        world,
        config=ServeConfig(workers=workers, backend="process",
                           cache_enabled=False, tracing=True),
    ).start()
    try:
        tickets = [broker.submit(job.query) for job in jobs]
        done = [broker.wait(ticket) for ticket in tickets]
        assert all(j.state is JobState.DONE for j in done), (
            f"states: {[j.state.value for j in done]}"
        )
        records = broker.tracer.records()
        broker_pid = os.getpid()
        complete = sum(
            1 for job in done
            if _trace_complete(
                [r for r in records if r["trace_id"] == job.trace_id],
                broker_pid,
            )
        )
        completeness = complete / len(done) if done else 0.0

        trace_path = TraceSink(trace_out).write(records) if trace_out else None
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                handle.write(broker.metrics.prometheus_text())
        snapshot = broker.metrics.snapshot()
    finally:
        broker.shutdown()

    worker_pids = sorted({r["pid"] for r in records if r["pid"] != broker_pid})
    print(f"  {complete}/{len(done)} jobs show the full span chain "
          f"({completeness:.0%}); {len(records)} spans across "
          f"{1 + len(worker_pids)} processes")
    if trace_path:
        print(f"  wrote {trace_path}")
    if metrics_out:
        print(f"  wrote {metrics_out}")
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    return {
        "jobs": len(done),
        "span_completeness": round(completeness, 4),
        "spans": len(records),
        "worker_processes": len(worker_pids),
        "registry_gauges": len(gauges),
        "registry_counters": len(counters),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24,
                        help="campaign size for the overhead comparison")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved repeats per tracing configuration")
    parser.add_argument("--trace-jobs", type=int, default=6,
                        help="campaign size for the completeness section")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--trace-workers", type=int, default=2,
                        help="process-pool size for the completeness section")
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: 8 jobs, 2 repeats, 4 traced jobs")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="write the result summary here ('' disables)")
    parser.add_argument("--trace-out", default="TRACE_obs.json",
                        help="Chrome trace-event artifact ('' disables)")
    parser.add_argument("--metrics-out", default="METRICS_obs.prom",
                        help="Prometheus text artifact ('' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.jobs, args.repeats, args.trace_jobs = 8, 2, 4

    world = build_world(WorldConfig(seed=7))

    print(f"\n=== full-observation overhead (tracing + SLO engine + flight "
          f"recorder) — {args.jobs} CPU-bound jobs, "
          f"{args.workers} thread workers, best of {args.repeats} ===")
    overhead = measure_overhead(
        world, build_jobs(world, args.jobs), args.workers, args.repeats
    )

    print(f"\n=== span completeness — {args.trace_jobs} jobs, "
          f"{args.trace_workers} process workers, tracing on ===")
    completeness = measure_completeness(
        world, build_jobs(world, args.trace_jobs), args.trace_workers,
        args.trace_out, args.metrics_out,
    )

    if args.out:
        summary = {
            "benchmark": "obs",
            "jobs": args.jobs,
            "repeats": args.repeats,
            **overhead,
            **{k: v for k, v in completeness.items() if k != "jobs"},
            "trace_jobs": completeness["jobs"],
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        max_overhead = SMOKE_MAX_OVERHEAD_PCT if args.smoke else MAX_OVERHEAD_PCT
        assert overhead["overhead_pct"] <= max_overhead, (
            f"tracing overhead {overhead['overhead_pct']:.1f}% above "
            f"{max_overhead}%"
        )
        assert completeness["span_completeness"] >= MIN_SPAN_COMPLETENESS, (
            f"span completeness {completeness['span_completeness']:.0%} below "
            f"{MIN_SPAN_COMPLETENESS:.0%}"
        )
        print(f"  thresholds met: <={max_overhead}% tracing overhead, "
              f">={MIN_SPAN_COMPLETENESS:.0%} span completeness")
    return 0


def test_obs_smoke(tmp_path):
    """Pytest entry point: the CI smoke preset must meet both thresholds."""
    assert main([
        "--smoke",
        "--out", str(tmp_path / "BENCH_obs.json"),
        "--trace-out", str(tmp_path / "TRACE_obs.json"),
        "--metrics-out", str(tmp_path / "METRICS_obs.prom"),
    ]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
