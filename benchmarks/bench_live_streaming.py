"""L1 — Live streaming: epoch throughput and alert-detection latency.

Replays the canonical cable-cut timeline through the full live stack
(world timeline → telemetry streams → online detectors → standing queries
over the broker) and reports epochs/sec, per-incident detection latency,
and the standing-query cache economics — then replays the *same* timeline
against the warm broker to show that an unchanged world recomputes
nothing.

Standalone (what CI smokes)::

    PYTHONPATH=src python benchmarks/bench_live_streaming.py --smoke

or as pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_live_streaming.py -s

Results are also written to ``BENCH_live_streaming.json`` so CI can archive
the perf trajectory per PR.
"""

from __future__ import annotations

import argparse
import json

from repro.live import (
    LiveConfig,
    default_cable_cut_timeline,
    default_cut_epoch,
    run_live_replay,
)
from repro.serve import QueryBroker, ServeConfig
from repro.synth.world import WorldConfig, build_world

#: Acceptance thresholds this benchmark demonstrates.
MAX_MEAN_DETECTION_LATENCY_EPOCHS = 2.0
MIN_WARM_HIT_RATE = 1.0  # an unchanged timeline must be 100% cache hits
MIN_COLD_EPOCHS_PER_SEC = 1.0


def replay(world, timeline, config, broker) -> "LiveReport":
    return run_live_replay(
        world=world, timeline_events=timeline, config=config, broker=broker
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=48)
    parser.add_argument("--pairs", type=int, default=8)
    parser.add_argument("--samples", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: 12 epochs, 4 pairs, 2 samples")
    parser.add_argument("--no-assert", action="store_true",
                        help="report only; skip threshold assertions")
    parser.add_argument("--out", default="BENCH_live_streaming.json",
                        help="write the result summary here ('' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.epochs, args.pairs, args.samples = 12, 4, 2

    world = build_world(WorldConfig(seed=7))
    config = LiveConfig(
        epochs=args.epochs,
        workers=args.workers,
        pair_count=args.pairs,
        samples_per_pair=args.samples,
    )
    timeline = default_cable_cut_timeline(
        world, cut_epoch=default_cut_epoch(args.epochs)
    )

    print(f"\n=== live streaming — {args.epochs} epochs, {args.pairs} pairs x "
          f"{args.samples} samples, {args.workers} workers ===")
    broker = QueryBroker(world, config=ServeConfig(workers=args.workers)).start()
    try:
        cold = replay(world, timeline, config, broker)
        warm = replay(world, timeline, config, broker)
    finally:
        broker.shutdown()

    latency = cold.mean_detection_latency_epochs
    cold_standing = cold.standing_stats
    warm_standing = warm.standing_stats
    print(f"  cold   {cold.duration_s:6.2f}s  {cold.epochs_per_sec:7.1f} epochs/s  "
          f"{len(cold.alerts)} alerts  standing {cold_standing['submitted']} computed "
          f"/ {cold_standing['cache_hits']} hits")
    print(f"  warm   {warm.duration_s:6.2f}s  {warm.epochs_per_sec:7.1f} epochs/s  "
          f"{len(warm.alerts)} alerts  standing {warm_standing['submitted']} computed "
          f"/ {warm_standing['cache_hits']} hits")
    print(f"  detection: {cold.detected_incidents}/{len(cold.incident_epochs)} "
          f"incidents, mean latency "
          f"{latency if latency is not None else 'n/a'} epochs")

    summary = {
        "benchmark": "live_streaming",
        "epochs": args.epochs,
        "pairs": args.pairs,
        "samples_per_pair": args.samples,
        "workers": args.workers,
        "cold_epochs_per_sec": round(cold.epochs_per_sec, 2),
        "warm_epochs_per_sec": round(warm.epochs_per_sec, 2),
        "cold_duration_s": round(cold.duration_s, 4),
        "warm_duration_s": round(warm.duration_s, 4),
        "alerts": len(cold.alerts),
        "detected_incidents": cold.detected_incidents,
        "incidents": len(cold.incident_epochs),
        "mean_detection_latency_epochs": latency,
        "cold_standing": cold_standing,
        "warm_standing": warm_standing,
        "detection": cold.detection,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1, default=str)
        print(f"  wrote {args.out}")

    if not args.no_assert:
        assert cold.detected_incidents == len(cold.incident_epochs), (
            f"only {cold.detected_incidents}/{len(cold.incident_epochs)} "
            "incidents detected"
        )
        assert latency is not None and latency <= MAX_MEAN_DETECTION_LATENCY_EPOCHS, (
            f"mean detection latency {latency} epochs exceeds "
            f"{MAX_MEAN_DETECTION_LATENCY_EPOCHS}"
        )
        assert warm_standing["submitted"] == 0, (
            f"warm replay recomputed {warm_standing['submitted']} standing jobs; "
            "an unchanged timeline must be pure cache hits"
        )
        assert warm_standing["hit_rate"] >= MIN_WARM_HIT_RATE, (
            f"warm hit rate {warm_standing['hit_rate']:.0%} below "
            f"{MIN_WARM_HIT_RATE:.0%}"
        )
        assert cold.epochs_per_sec >= MIN_COLD_EPOCHS_PER_SEC, (
            f"cold replay at {cold.epochs_per_sec:.2f} epochs/s below "
            f"{MIN_COLD_EPOCHS_PER_SEC}"
        )
        print(f"  thresholds met: all incidents detected within "
              f"{MAX_MEAN_DETECTION_LATENCY_EPOCHS} epochs, warm replay "
              f"recomputes nothing")
    return 0


def test_live_streaming_smoke(tmp_path):
    """Pytest entry point: the CI smoke preset must meet every threshold."""
    out = tmp_path / "BENCH_live_streaming.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["detected_incidents"] >= 1


if __name__ == "__main__":
    raise SystemExit(main())
