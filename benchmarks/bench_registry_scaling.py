"""A1 — registry scaling: context cost grows linearly with tool count.

The paper's design argument (§3): a compact capability registry scales
linearly with available tools, unlike exposing entire codebases.  Measured
as prompt-rendering size and lookup latency versus entry count.
"""

from benchmarks.conftest import print_rows
from repro.core.registry import RegistryEntry, default_registry


def _synthetic_entry(i: int) -> RegistryEntry:
    return RegistryEntry(
        name=f"synth{i}.function_{i}",
        framework=f"synth{i}",
        summary=f"Synthetic capability number {i} for scaling measurements.",
        capabilities=(f"capability_{i % 7}", "synthetic"),
        inputs=(("data", "list"), ("window", "float")),
        outputs=(("result", "dict"),),
        callable_ref="repro.nautilus.api:list_cables",
    )


def _registry_with(extra: int):
    registry = default_registry()
    for i in range(extra):
        registry.add(_synthetic_entry(i))
    return registry


def test_registry_prompt_size_linear(benchmark):
    sizes: list[tuple[int, int]] = []

    def measure():
        rows = []
        for extra in (0, 20, 40, 80, 160):
            registry = _registry_with(extra)
            rows.append((len(registry), len(registry.to_prompt_text())))
        return rows

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Fit bytes-per-entry between consecutive sizes; linearity means the
    # marginal cost is stable (within 2x across the whole range).
    marginals = [
        (sizes[i + 1][1] - sizes[i][1]) / (sizes[i + 1][0] - sizes[i][0])
        for i in range(len(sizes) - 1)
    ]
    print_rows(
        "Registry scaling (paper §3: 'scales linearly with available tools')",
        [(f"{count} entries", f"{size} prompt bytes") for count, size in sizes]
        + [("marginal bytes/entry", [round(m, 1) for m in marginals])],
    )
    assert max(marginals) / min(marginals) < 2.0
    # And the whole-registry rendering stays well under a model context.
    assert sizes[-1][1] < 200_000


def test_registry_lookup_fast_at_scale(benchmark):
    registry = _registry_with(200)

    def lookups():
        for name in registry.names():
            registry.get(name)
        registry.find_by_capability(["capability_3"])

    benchmark(lookups)
