"""Extension — Monte Carlo probability sweep (distributional impact).

Not a paper table: extends case study 2 from single draws to distributions,
sweeping the per-asset failure probability and reporting mean/p95 capacity
loss — the dose-response curve an operator would actually plan against.
"""

from benchmarks.conftest import print_rows
from repro.xaminer.montecarlo import monte_carlo_sweep
from repro.synth.scenarios import default_disaster_catalog


def test_probability_dose_response(world, benchmark):
    quake = default_disaster_catalog()[0]
    probabilities = [0.05, 0.1, 0.25, 0.5, 1.0]

    def sweep():
        return monte_carlo_sweep(world, quake, probabilities, trials=60)

    summaries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_rows(
        f"Monte Carlo sweep — {quake.name} (60 trials per point)",
        [
            (f"p={summary.failure_probability:.2f}",
             f"mean loss {summary.mean_capacity_lost_gbps:8.1f} Gbps, "
             f"p95 {summary.p95_capacity_lost_gbps:8.1f} Gbps, "
             f"quiet runs {summary.no_failure_fraction:.2f}")
            for summary in summaries
        ],
    )
    losses = [s.mean_capacity_lost_gbps for s in summaries]
    assert losses == sorted(losses)  # dose-response is monotone
    assert summaries[-1].no_failure_fraction == 0.0
    quiet = [s.no_failure_fraction for s in summaries]
    assert quiet == sorted(quiet, reverse=True)
