"""Benchmark runner + regression gate for the serve/routing/forensic hot paths.

Runs the serve-throughput, incremental-routing, forensic-loop and
observability benchmarks (each writes its ``BENCH_*.json``), then gates
the combined results against the committed floor in
``benchmarks/bench_baseline.json`` — warm-cache hit rate, worker/backends
speedups, convergence speedups, the closed-loop forensic guarantees (one
completed case per incident, warm replays submitting nothing), the
tracing-plane guarantees (near-zero overhead when disabled, complete
broker-to-worker span chains when enabled) and the durability
guarantees (journal tax within a few percent, exactly-once resume with
byte-identical artifacts) must not regress below it.
Every emitted ``BENCH_*.json`` is stamped with run metadata (git sha,
cpu count, python version, per-benchmark wall time) so archived artifacts
are comparable across machines and commits.  CI runs this as a smoke
step; a failing gate fails the build.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py          # full
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke  # CI preset
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

import bench_forensic_loop
import bench_incremental_routing
import bench_obs
import bench_serve_throughput

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "bench_baseline.json")
SERVE_OUT = "BENCH_serve.json"
ROUTING_OUT = "BENCH_routing.json"
FORENSIC_OUT = "BENCH_forensic_loop.json"
OBS_OUT = "BENCH_obs.json"


def _gate(checks: list[tuple[str, bool, str]]) -> bool:
    ok = True
    for name, passed, detail in checks:
        print(f"  {'PASS' if passed else 'FAIL'}  {name}: {detail}")
        ok = ok and passed
    return ok


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
    except Exception:  # not a checkout, git missing, ... — metadata only
        return "unknown"


def _peak_rss_kb() -> int | None:
    """High-water RSS in KiB across this process and its reaped children
    (worker pools fork, so children often dominate).  ``ru_maxrss`` is a
    running maximum — a benchmark's stamp is the peak *as of* its
    completion, not an isolated per-benchmark figure."""
    if resource is None:
        return None
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, children_kb)


def _stamp_meta(path: str, wall_s: float, sha: str,
                peak_rss_kb: int | None = None) -> None:
    """Inject run metadata into an emitted BENCH_*.json (in place)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["meta"] = {
        "git_sha": sha,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "bench_wall_s": round(wall_s, 2),
        "peak_rss_kb": peak_rss_kb,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: smaller campaigns, fewer repeats")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="committed regression floor to gate against")
    parser.add_argument("--no-gate", action="store_true",
                        help="run the benchmarks but skip the regression gate")
    args = parser.parse_args(argv)

    serve_args = ["--no-assert", "--out", SERVE_OUT]
    routing_args = ["--no-assert", "--out", ROUTING_OUT]
    forensic_args = ["--no-assert", "--out", FORENSIC_OUT]
    obs_args = ["--no-assert", "--out", OBS_OUT]
    if args.smoke:
        serve_args.append("--smoke")
        routing_args.extend(["--repeats", "2"])
        forensic_args.append("--smoke")
        obs_args.append("--smoke")

    benches = [
        ("serve", bench_serve_throughput, serve_args, SERVE_OUT),
        ("routing", bench_incremental_routing, routing_args, ROUTING_OUT),
        ("forensic", bench_forensic_loop, forensic_args, FORENSIC_OUT),
        ("obs", bench_obs, obs_args, OBS_OUT),
    ]
    sha = _git_sha()
    wall: dict[str, float] = {}
    rss: dict[str, int | None] = {}
    for name, module, bench_argv, out in benches:
        started = time.perf_counter()
        module.main(bench_argv)
        wall[name] = time.perf_counter() - started
        rss[name] = _peak_rss_kb()
        _stamp_meta(out, wall[name], sha, peak_rss_kb=rss[name])
    print("\n=== wall time / peak RSS per benchmark ===")
    for name in wall:
        rss_mb = f"{rss[name] / 1024:7.0f} MiB" if rss[name] else "    n/a"
        print(f"  {name:<10s} {wall[name]:7.1f}s {rss_mb}")

    with open(SERVE_OUT, encoding="utf-8") as handle:
        serve = json.load(handle)
    with open(ROUTING_OUT, encoding="utf-8") as handle:
        routing = json.load(handle)
    with open(FORENSIC_OUT, encoding="utf-8") as handle:
        forensic = json.load(handle)
    with open(OBS_OUT, encoding="utf-8") as handle:
        obs = json.load(handle)

    if args.no_gate:
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        base = json.load(handle)
    sbase, rbase = base["serve"], base["routing"]
    fbase, obase = base["forensic"], base["obs"]
    dbase = base["durability"]
    cores = serve.get("cores", bench_serve_throughput.available_cores())
    # Tiny smoke campaigns jitter more than the full-run overhead bar; the
    # baseline carries a dedicated (looser) smoke ceiling for them.
    max_overhead = (obase["smoke_max_overhead_pct"] if args.smoke
                    else obase["max_overhead_pct"])
    max_journal_tax = (dbase["smoke_max_journal_overhead_pct"] if args.smoke
                       else dbase["max_journal_overhead_pct"])
    durability = serve["durability"]

    print(f"\n=== regression gate vs {os.path.relpath(args.baseline)} ===")
    checks = [
        ("serve worker speedup",
         serve["speedup"] >= sbase["min_worker_speedup"],
         f"{serve['speedup']:.2f}x (floor {sbase['min_worker_speedup']}x)"),
        ("serve warm hit rate",
         serve["warm_hit_rate"] >= sbase["min_warm_hit_rate"],
         f"{serve['warm_hit_rate']:.0%} (floor {sbase['min_warm_hit_rate']:.0%})"),
        ("backend artifact identity",
         bool(serve.get("artifacts_identical", False)),
         str(serve.get("artifacts_identical"))),
        ("affinity warm routing",
         serve.get("affinity_hit_rate", 0.0) >= sbase["min_affinity_hit_rate"],
         f"{serve.get('affinity_hit_rate', 0.0):.0%} resubmissions to bound "
         f"workers (floor {sbase['min_affinity_hit_rate']:.0%}; "
         "deterministic, not core-gated)"),
        ("routing timeline speedup",
         routing["timeline_speedup"] >= rbase["min_timeline_speedup"],
         f"{routing['timeline_speedup']:.1f}x (floor {rbase['min_timeline_speedup']}x)"),
        ("routing cold speedup",
         routing["cold_speedup"] >= rbase["min_cold_speedup"],
         f"{routing['cold_speedup']:.2f}x (floor {rbase['min_cold_speedup']}x)"),
        ("routing serve-burst speedup",
         routing["serve_speedup"] >= rbase["min_serve_speedup"],
         f"{routing['serve_speedup']:.2f}x (floor {rbase['min_serve_speedup']}x)"),
        ("routing engine speedup",
         routing["engine_speedup"] >= rbase["min_engine_speedup"],
         f"{routing['engine_speedup']:.2f}x int-indexed SPF vs legacy "
         f"(floor {rbase['min_engine_speedup']}x)"),
        ("routing full convergence",
         routing["full_convergence_ms"] <= rbase["max_full_convergence_ms"],
         f"{routing['full_convergence_ms']:.2f} ms per cold table "
         f"(ceiling {rbase['max_full_convergence_ms']} ms)"),
        ("routing epochs/sec",
         routing["epochs_per_sec"] >= rbase["min_epochs_per_sec"],
         f"{routing['epochs_per_sec']:,.0f} on the overlapping-disaster "
         f"timeline (floor {rbase['min_epochs_per_sec']:,})"),
        ("routing repair fraction",
         routing["repair_fraction"] <= rbase["max_repair_fraction"],
         f"{routing['repair_fraction']:.1%} of touched route pairs repaired "
         f"rather than shared (ceiling {rbase['max_repair_fraction']:.0%})"),
        ("forensic case per incident",
         forensic["incident_case_rate"] >= fbase["min_incident_case_rate"]
         and forensic["cases"] == forensic["incidents"],
         f"{forensic['cases']} deduped cases / {forensic['incidents']} "
         "incidents (must be exactly one each)"),
        ("forensic completion",
         forensic["completed_rate"] >= fbase["min_completed_rate"],
         f"{forensic['completed_rate']:.0%} triggered queries completed "
         f"(floor {fbase['min_completed_rate']:.0%})"),
        ("forensic verdict accuracy",
         forensic["confirmed_rate"] >= fbase["min_confirmed_rate"],
         f"{forensic['confirmed_rate']:.0%} verdicts name a ground-truth "
         f"cable (floor {fbase['min_confirmed_rate']:.0%})"),
        ("forensic alert latency",
         forensic["mean_alert_latency_epochs"] is not None
         and forensic["mean_alert_latency_epochs"] <= fbase["max_alert_latency_epochs"],
         f"{forensic['mean_alert_latency_epochs']} epochs mean alert lag "
         f"(ceiling {fbase['max_alert_latency_epochs']}; None = no cases opened)"),
        ("forensic warm economics",
         forensic["warm_trigger_hit_rate"] >= fbase["min_warm_trigger_hit_rate"],
         f"{forensic['warm_trigger_hit_rate']:.0%} warm triggered-query "
         f"cache hits (floor {fbase['min_warm_trigger_hit_rate']:.0%}; "
         f"{forensic['warm_queries_submitted']} warm submissions)"),
        ("tracing overhead",
         obs["overhead_pct"] <= max_overhead,
         f"{obs['overhead_pct']:.1f}% traced vs null throughput "
         f"(ceiling {max_overhead}%)"),
        ("journal overhead",
         durability["journal_overhead_pct"] <= max_journal_tax,
         f"{durability['journal_overhead_pct']:+.1f}% journaled vs "
         f"unjournaled throughput, best of {durability['repeats']} "
         f"(ceiling {max_journal_tax}%)"),
        ("exactly-once resume",
         durability["resume_replayed"] == durability["jobs"]
         and durability["resume_reexecuted"] == 0,
         f"{durability['resume_replayed']}/{durability['jobs']} completions "
         f"re-joined from the journal, "
         f"{durability['resume_reexecuted']} re-executed (must be 0)"),
        ("resume artifact identity",
         bool(durability["resume_identical"]),
         str(durability["resume_identical"])),
        ("span completeness",
         obs["span_completeness"] >= obase["min_span_completeness"],
         f"{obs['span_completeness']:.0%} of process-backend jobs show the "
         f"full broker-to-worker span chain "
         f"(floor {obase['min_span_completeness']:.0%})"),
    ]
    if cores >= 2:
        checks.append((
            "process backend speedup",
            serve.get("process_speedup", 0.0) >= sbase["min_process_speedup"],
            f"{serve.get('process_speedup', 0.0):.2f}x "
            f"(floor {sbase['min_process_speedup']}x on {cores} cores)",
        ))
    else:
        print(f"  SKIP  process backend speedup: {cores} core available "
              "(no hardware parallelism to measure)")

    if not _gate(checks):
        print("regression gate FAILED", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
