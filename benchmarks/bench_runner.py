"""Benchmark runner + regression gate for the serve/routing/forensic hot paths.

Runs the serve-throughput, incremental-routing and forensic-loop
benchmarks (each writes its ``BENCH_*.json``), then gates the combined
results against the committed floor in ``benchmarks/bench_baseline.json``
— warm-cache hit rate, worker/backends speedups, convergence speedups and
the closed-loop forensic guarantees (one completed case per incident,
warm replays submitting nothing) must not regress below it.  CI runs this
as a smoke step; a failing gate fails the build.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py          # full
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke  # CI preset
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import bench_forensic_loop
import bench_incremental_routing
import bench_serve_throughput

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "bench_baseline.json")
SERVE_OUT = "BENCH_serve.json"
ROUTING_OUT = "BENCH_routing.json"
FORENSIC_OUT = "BENCH_forensic_loop.json"


def _gate(checks: list[tuple[str, bool, str]]) -> bool:
    ok = True
    for name, passed, detail in checks:
        print(f"  {'PASS' if passed else 'FAIL'}  {name}: {detail}")
        ok = ok and passed
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: smaller campaigns, fewer repeats")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="committed regression floor to gate against")
    parser.add_argument("--no-gate", action="store_true",
                        help="run the benchmarks but skip the regression gate")
    args = parser.parse_args(argv)

    serve_args = ["--no-assert", "--out", SERVE_OUT]
    routing_args = ["--no-assert", "--out", ROUTING_OUT]
    forensic_args = ["--no-assert", "--out", FORENSIC_OUT]
    if args.smoke:
        serve_args.append("--smoke")
        routing_args.extend(["--repeats", "2"])
        forensic_args.append("--smoke")

    bench_serve_throughput.main(serve_args)
    bench_incremental_routing.main(routing_args)
    bench_forensic_loop.main(forensic_args)

    with open(SERVE_OUT, encoding="utf-8") as handle:
        serve = json.load(handle)
    with open(ROUTING_OUT, encoding="utf-8") as handle:
        routing = json.load(handle)
    with open(FORENSIC_OUT, encoding="utf-8") as handle:
        forensic = json.load(handle)

    if args.no_gate:
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        base = json.load(handle)
    sbase, rbase = base["serve"], base["routing"]
    fbase = base["forensic"]
    cores = serve.get("cores", bench_serve_throughput.available_cores())

    print(f"\n=== regression gate vs {os.path.relpath(args.baseline)} ===")
    checks = [
        ("serve worker speedup",
         serve["speedup"] >= sbase["min_worker_speedup"],
         f"{serve['speedup']:.2f}x (floor {sbase['min_worker_speedup']}x)"),
        ("serve warm hit rate",
         serve["warm_hit_rate"] >= sbase["min_warm_hit_rate"],
         f"{serve['warm_hit_rate']:.0%} (floor {sbase['min_warm_hit_rate']:.0%})"),
        ("backend artifact identity",
         bool(serve.get("artifacts_identical", False)),
         str(serve.get("artifacts_identical"))),
        ("affinity warm routing",
         serve.get("affinity_hit_rate", 0.0) >= sbase["min_affinity_hit_rate"],
         f"{serve.get('affinity_hit_rate', 0.0):.0%} resubmissions to bound "
         f"workers (floor {sbase['min_affinity_hit_rate']:.0%}; "
         "deterministic, not core-gated)"),
        ("routing timeline speedup",
         routing["timeline_speedup"] >= rbase["min_timeline_speedup"],
         f"{routing['timeline_speedup']:.1f}x (floor {rbase['min_timeline_speedup']}x)"),
        ("routing cold speedup",
         routing["cold_speedup"] >= rbase["min_cold_speedup"],
         f"{routing['cold_speedup']:.2f}x (floor {rbase['min_cold_speedup']}x)"),
        ("routing serve-burst speedup",
         routing["serve_speedup"] >= rbase["min_serve_speedup"],
         f"{routing['serve_speedup']:.2f}x (floor {rbase['min_serve_speedup']}x)"),
        ("forensic case per incident",
         forensic["incident_case_rate"] >= fbase["min_incident_case_rate"]
         and forensic["cases"] == forensic["incidents"],
         f"{forensic['cases']} deduped cases / {forensic['incidents']} "
         "incidents (must be exactly one each)"),
        ("forensic completion",
         forensic["completed_rate"] >= fbase["min_completed_rate"],
         f"{forensic['completed_rate']:.0%} triggered queries completed "
         f"(floor {fbase['min_completed_rate']:.0%})"),
        ("forensic verdict accuracy",
         forensic["confirmed_rate"] >= fbase["min_confirmed_rate"],
         f"{forensic['confirmed_rate']:.0%} verdicts name a ground-truth "
         f"cable (floor {fbase['min_confirmed_rate']:.0%})"),
        ("forensic alert latency",
         forensic["mean_alert_latency_epochs"] is not None
         and forensic["mean_alert_latency_epochs"] <= fbase["max_alert_latency_epochs"],
         f"{forensic['mean_alert_latency_epochs']} epochs mean alert lag "
         f"(ceiling {fbase['max_alert_latency_epochs']}; None = no cases opened)"),
        ("forensic warm economics",
         forensic["warm_trigger_hit_rate"] >= fbase["min_warm_trigger_hit_rate"],
         f"{forensic['warm_trigger_hit_rate']:.0%} warm triggered-query "
         f"cache hits (floor {fbase['min_warm_trigger_hit_rate']:.0%}; "
         f"{forensic['warm_queries_submitted']} warm submissions)"),
    ]
    if cores >= 2:
        checks.append((
            "process backend speedup",
            serve.get("process_speedup", 0.0) >= sbase["min_process_speedup"],
            f"{serve.get('process_speedup', 0.0):.2f}x "
            f"(floor {sbase['min_process_speedup']}x on {cores} cores)",
        ))
    else:
        print(f"  SKIP  process backend speedup: {cores} core available "
              "(no hardware parallelism to measure)")

    if not _gate(checks):
        print("regression gate FAILED", file=sys.stderr)
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
