"""A4 — §5 Trust: ensemble consensus as a verification signal.

The paper proposes "ensemble methods comparing multiple independent workflow
generations" to score confidence.  Measured here: generate workflows for the
same query across independently generated worlds (different measurement
environments) and quantify structural consensus via functional signatures.
"""

from benchmarks.conftest import print_rows
from repro.core.pipeline import ArachNet
from repro.core.workflow import functional_signature
from repro.evalharness.casestudies import CASE_QUERIES
from repro.synth.world import WorldConfig, build_world


def test_ensemble_consensus_across_environments(benchmark):
    def run_ensemble():
        signatures = []
        for seed in (7, 11, 13):
            world = build_world(WorldConfig(seed=seed))
            system = ArachNet.for_world(world, curate=False)
            result = system.answer(CASE_QUERIES[2])
            assert result.execution.succeeded
            signatures.append(frozenset(functional_signature(result.design.chosen)))
        return signatures

    signatures = benchmark.pedantic(run_ensemble, rounds=1, iterations=1)

    consensus = len(set(signatures)) == 1
    pairwise = []
    for i in range(len(signatures)):
        for j in range(i + 1, len(signatures)):
            a, b = signatures[i], signatures[j]
            pairwise.append(len(a & b) / len(a | b))

    print_rows(
        "Ensemble consensus (paper §5: confidence from independent generations)",
        [
            ("environments", "3 worlds (seeds 7, 11, 13)"),
            ("identical signatures", consensus),
            ("pairwise signature jaccard", [round(p, 3) for p in pairwise]),
            ("signature size", len(signatures[0])),
        ],
    )
    # Workflow structure must be environment-independent: the design derives
    # from the query and registry, not from the measured world.
    assert consensus
    assert all(p == 1.0 for p in pairwise)
