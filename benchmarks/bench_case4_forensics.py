"""E4 — §4.3 Case Study 4: automated root-cause investigation.

Regenerates the paper's CS4 rows: the generated forensic workflow recovers
the injected cable failure (SeaMeWe-5) from latency observables alone,
establishes causation with three independent evidence strands, and matches
the expert verdict (paper ≈750 lines).
"""

from benchmarks.conftest import print_rows
from repro.evalharness.casestudies import run_case4


def test_case4_forensic_investigation(world, benchmark):
    report = benchmark.pedantic(run_case4, args=(world,), rounds=1, iterations=1)

    print_rows(
        "Case Study 4: latency root-cause forensics (paper §4.3)",
        [
            ("query", report.query[:70] + "…"),
            ("generated LoC", f"{report.metrics['generated_loc']} (paper ≈750)"),
            ("ground-truth cable", report.metrics["true_cable"]),
            ("identified (generated)", report.metrics["generated_identified"]),
            ("identified (expert)", report.metrics["expert_identified"]),
            ("verdict", report.metrics["generated_verdict"]),
            ("confidence (gen/expert)",
             f"{report.metrics['generated_confidence']}/"
             f"{report.metrics['expert_confidence']}"),
            ("onset error (hours)", report.metrics["onset_error_hours"]),
            ("evidence strands", report.metrics["evidence_strands"]),
            ("checks", "ALL PASS" if report.all_passed else report.checks),
        ],
    )
    assert report.all_passed, report.checks
