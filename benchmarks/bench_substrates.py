"""Substrate performance: the measurement engines under the agents.

Not a paper table — operational benchmarks that keep the substrates honest
(world generation, cross-layer mapping, collector simulation, campaigns).
"""

from repro.bgp.collector import BGPCollectorSim, CableIncident
from repro.nautilus.mapping import CrossLayerMapper
from repro.topology.cascade import propagate_cascade
from repro.traceroute.api import run_campaign
from repro.synth.world import WorldConfig, build_world

DAY = 86_400.0


def test_world_generation(benchmark):
    world = benchmark(lambda: build_world(WorldConfig(seed=99)))
    assert len(world.ip_links) > 100


def test_cross_layer_mapping(world, benchmark):
    mapper = CrossLayerMapper(world)
    mappings = benchmark(mapper.map_all)
    assert len(mappings) == len(world.submarine_links())


def test_bgp_collector_week_with_incident(world, benchmark):
    sim = BGPCollectorSim(world)

    def generate():
        return sim.generate_updates(
            0.0, 7 * DAY, incidents=[CableIncident("SeaMeWe-5", onset=4 * DAY)]
        )

    updates = benchmark.pedantic(generate, rounds=2, iterations=1)
    assert len(updates) > 1000


def test_traceroute_campaign_week(world, benchmark):
    def campaign():
        return run_campaign(world, "europe", "asia", 0.0, 7 * DAY,
                            interval_s=21_600.0)

    rows = benchmark.pedantic(campaign, rounds=2, iterations=1)
    assert len(rows) > 1000


def test_cascade_propagation(world, benchmark):
    initial = [l.id for l in world.links_on_cable("cable-seamewe-5")]
    initial += [l.id for l in world.links_on_cable("cable-aae-1")]

    def cascade():
        return propagate_cascade(world, initial,
                                 initial_cable_ids=["cable-seamewe-5",
                                                    "cable-aae-1"])

    result = benchmark.pedantic(cascade, rounds=2, iterations=1)
    assert result.final_failed_link_ids
